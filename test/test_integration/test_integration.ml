(* Integration tests: full domains and Virtual Organisations.  Each of the
   paper's figures is exercised end-to-end and its message sequence is
   asserted against the network trace. *)

module Xml = Dacs_xml.Xml
module Value = Dacs_policy.Value
module Decision = Dacs_policy.Decision
module Policy = Dacs_policy.Policy
module Rule = Dacs_policy.Rule
module Expr = Dacs_policy.Expr
module Target = Dacs_policy.Target
module Combine = Dacs_policy.Combine
module Net = Dacs_net.Net
module Engine = Dacs_net.Engine
module Service = Dacs_ws.Service
open Dacs_core

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let fresh () =
  let net = Net.create () in
  let services = Service.create (Dacs_net.Rpc.create net) in
  (net, services)

let doctor_read_policy ?(id = "policy") ?(issuer = "") resource =
  Policy.Inline_policy
    (Policy.make ~id ~issuer ~rule_combining:Combine.First_applicable
       [
         Rule.permit
           ~target:
             Target.(
               any |> subject_is "role" "doctor" |> resource_is "resource-id" resource
               |> action_is "action-id" "read")
           ("permit-doctor-read-" ^ resource);
         Rule.deny ("default-deny-" ^ id);
       ])

let doctor_subject user = [ ("subject-id", Value.String user); ("role", Value.String "doctor") ]

(* --- single domain ----------------------------------------------------- *)

let test_domain_end_to_end () =
  let net, services = fresh () in
  let domain = Domain.create services ~name:"hospital" () in
  Domain.set_local_policy domain (doctor_read_policy "charts");
  let pep = Domain.expose_resource domain ~resource:"charts" ~content:"chart-data" () in
  Domain.register_user domain ~user:"alice" (doctor_subject "alice");
  let client = Client.create services ~node:(Net.add_node net "c"; "c") ~subject:(doctor_subject "alice") in
  let got = ref None in
  Client.request client ~pep:(Pep.node pep) ~action:"read" (fun r -> got := Some r);
  Net.run net;
  (match !got with
  | Some (Ok (Wire.Granted { content; _ })) -> check string_ "content" "chart-data" content
  | _ -> Alcotest.fail "expected grant");
  (* The domain audit holds the decision. *)
  check int_ "audited" 1 (Audit.size (Domain.audit domain));
  check bool_ "pep registered" true (Domain.find_pep domain ~resource:"charts" <> None)

let test_domain_pdp_pulls_attributes_from_pip () =
  (* The client presents only its identity; the role comes from the
     domain PIP (registered via register_user). *)
  let net, services = fresh () in
  let domain = Domain.create services ~name:"hospital" () in
  Domain.set_local_policy domain (doctor_read_policy "charts");
  let pep = Domain.expose_resource domain ~resource:"charts" () in
  Domain.register_user domain ~user:"alice" (doctor_subject "alice");
  Net.add_node net "c";
  let client =
    Client.create services ~node:"c" ~subject:[ ("subject-id", Value.String "alice") ]
  in
  let got = ref None in
  Client.request client ~pep:(Pep.node pep) ~action:"read" (fun r -> got := Some r);
  Net.run net;
  (match !got with
  | Some (Ok (Wire.Granted _)) -> ()
  | _ -> Alcotest.fail "expected grant via PIP attributes");
  check bool_ "pip consulted" true
    ((Pdp_service.stats (Domain.pdp domain)).Pdp_service.pip_fetches > 0)

let test_domain_policy_change_invalidates () =
  let net, services = fresh () in
  let domain = Domain.create services ~name:"hospital" () in
  Domain.set_local_policy domain (doctor_read_policy "charts");
  let cache = Decision_cache.create ~ttl:1000.0 () in
  let pep = Domain.expose_resource domain ~resource:"charts" ~cache () in
  Domain.register_user domain ~user:"alice" (doctor_subject "alice");
  Net.add_node net "c";
  let client = Client.create services ~node:"c" ~subject:(doctor_subject "alice") in
  let request k =
    Client.request client ~pep:(Pep.node pep) ~action:"read" k;
    Net.run net
  in
  let got = ref None in
  request (fun r -> got := Some r);
  (match !got with
  | Some (Ok (Wire.Granted _)) -> ()
  | _ -> Alcotest.fail "expected initial grant");
  (* Replace the policy with deny-all; set_local_policy republished and
     invalidated the PEP cache, so the change takes effect at once. *)
  Domain.set_local_policy domain (Policy.Inline_policy (Policy.make ~id:"lockdown" [ Rule.deny "deny" ]));
  request (fun r -> got := Some r);
  match !got with
  | Some (Ok (Wire.Denied _)) -> ()
  | _ -> Alcotest.fail "expected deny right after the policy change"

(* --- figure 3: pull sequence ---------------------------------------------- *)

let test_fig3_pull_message_sequence () =
  let net, services = fresh () in
  let domain = Domain.create services ~name:"d" () in
  Domain.set_local_policy domain (doctor_read_policy "ws");
  let pep = Domain.expose_resource domain ~resource:"ws" () in
  Net.add_node net "client";
  let client = Client.create services ~node:"client" ~subject:(doctor_subject "alice") in
  Net.set_tracing net true;
  let got = ref None in
  Client.request client ~pep:(Pep.node pep) ~action:"read" (fun r -> got := Some r);
  Net.run net;
  check bool_ "granted" true (match !got with Some (Ok (Wire.Granted _)) -> true | _ -> false);
  (* Fig. 3: (I) access request, (II) authz query, (III) authz response,
     (IV) access response.  The PDP additionally fetched its policy from
     the PAP on first use. *)
  let cats = List.map (fun e -> e.Net.t_category) (Net.trace net) in
  let expected =
    [
      "access"; "authz-query"; "policy-query"; "policy-query-reply"; "authz-query-reply";
      "access-reply";
    ]
  in
  check (Alcotest.list string_) "fig.3 sequence" expected cats

(* --- figure 2: push sequence ------------------------------------------------ *)

let test_fig2_push_message_sequence () =
  let net, services = fresh () in
  let keys = Dacs_crypto.Rsa.generate (Dacs_crypto.Rng.create 21L) ~bits:512 in
  Net.add_node net "cas";
  let cas =
    Capability_service.create services ~node:"cas" ~issuer:"cas" ~keypair:keys
      ~root:(doctor_read_policy "ws") ()
  in
  Net.add_node net "pep";
  ignore
    (Pep.create services ~node:"pep" ~domain:"d" ~resource:"ws"
       (Pep.Push
          {
            trusted_issuer =
              (fun i -> if i = "cas" then Some (Capability_service.public_key cas) else None);
            check_revocation = None;
            local_pdp = None;
          }));
  Net.add_node net "client";
  let client = Client.create services ~node:"client" ~subject:(doctor_subject "alice") in
  Net.set_tracing net true;
  let got = ref None in
  Client.request_with_capability client ~capability_service:"cas" ~pep:"pep" ~resource:"ws"
    ~action:"read" (fun r -> got := Some r);
  Net.run net;
  check bool_ "granted" true (match !got with Some (Ok (Wire.Granted _)) -> true | _ -> false);
  (* Fig. 2: (I) capability request, (II) capability response,
     (III) service call with assertion, (IV) access response. *)
  let cats = List.map (fun e -> e.Net.t_category) (Net.trace net) in
  check (Alcotest.list string_) "fig.2 sequence"
    [ "capability-request"; "capability-request-reply"; "access"; "access-reply" ]
    cats;
  (* On reuse, only the service call remains (2 messages instead of 4). *)
  Net.clear_trace net;
  Client.request_with_capability client ~capability_service:"cas" ~pep:"pep" ~resource:"ws"
    ~action:"read" (fun r -> got := Some r);
  Net.run net;
  check (Alcotest.list string_) "reuse sequence" [ "access"; "access-reply" ]
    (List.map (fun e -> e.Net.t_category) (Net.trace net))

(* --- figure 1: a virtual organisation ------------------------------------------ *)

let make_vo () =
  let net, services = fresh () in
  let d_a = Domain.create services ~name:"org-a" () in
  let d_b = Domain.create services ~name:"org-b" () in
  let d_c = Domain.create services ~name:"org-c" () in
  let vo = Vo.form services ~name:"vo" [ d_a; d_b; d_c ] in
  (net, services, vo, d_a, d_b, d_c)

let test_vo_formation () =
  let _net, _services, vo, d_a, _d_b, _d_c = make_vo () in
  check int_ "three domains" 3 (List.length (Vo.domains vo));
  check bool_ "find domain" true (Vo.find_domain vo "org-b" <> None);
  check bool_ "missing domain" true (Vo.find_domain vo "org-z" = None);
  (* Trust fabric knows every member IdP and the VO capability service. *)
  check bool_ "idp key" true (Vo.issuer_key vo "idp.org-a" <> None);
  check bool_ "cas key" true (Vo.issuer_key vo "cas.vo" <> None);
  check bool_ "unknown issuer" true (Vo.issuer_key vo "idp.evil" = None);
  (* Member PAPs are subscribed to the VO PAP. *)
  check int_ "subscribers" 3 (List.length (Pap.subscribers (Vo.vo_pap vo)));
  ignore d_a

let test_vo_policy_syndication () =
  let net, _services, vo, d_a, d_b, d_c = make_vo () in
  Vo.publish_policy vo (doctor_read_policy ~id:"vo-policy" ~issuer:"vo" "shared-ws");
  Net.run net;
  (* Every member PAP received the policy. *)
  List.iter
    (fun d ->
      check bool_ (Domain.name d ^ " received") true (Pap.current (Domain.pap d) <> None))
    [ d_a; d_b; d_c ]

let test_vo_cross_domain_access () =
  (* A user from org-b accesses a resource exposed by org-a under the
     VO-wide policy. *)
  let net, _services, vo, d_a, d_b, _ = make_vo () in
  Vo.publish_policy vo (doctor_read_policy ~id:"vo-policy" ~issuer:"vo" "shared-ws");
  Net.run net;
  let pep = Domain.expose_resource d_a ~resource:"shared-ws" ~content:"vo-data" () in
  let client = Vo.client_for vo ~domain:d_b ~user:"bob" (doctor_subject "bob") in
  let got = ref None in
  Client.request client ~pep:(Pep.node pep) ~action:"read" (fun r -> got := Some r);
  Net.run net;
  (match !got with
  | Some (Ok (Wire.Granted { content; _ })) -> check string_ "content" "vo-data" content
  | _ -> Alcotest.fail "expected cross-domain grant");
  (* Non-doctors from other domains are denied. *)
  let mallory = Vo.client_for vo ~domain:d_b ~user:"mallory" [ ("subject-id", Value.String "mallory") ] in
  Client.request mallory ~pep:(Pep.node pep) ~action:"read" (fun r -> got := Some r);
  Net.run net;
  match !got with
  | Some (Ok (Wire.Denied _)) -> ()
  | _ -> Alcotest.fail "expected deny"

let test_vo_domain_autonomy () =
  (* The VO grants access, but the resource domain's own policy forbids
     it: deny-overrides combination preserves local autonomy. *)
  let net, _services, vo, d_a, d_b, _ = make_vo () in
  Vo.publish_policy vo (doctor_read_policy ~id:"vo-policy" ~issuer:"vo" "shared-ws");
  Net.run net;
  (* org-a locally denies bob by name. *)
  Domain.set_local_policy d_a
    (Policy.Inline_policy
       (Policy.make ~id:"local-restrictions" ~issuer:"org-a" ~rule_combining:Combine.First_applicable
          [
            Rule.deny
              ~target:Target.(any |> subject_is "subject-id" "bob")
              "blacklist-bob";
          ]));
  Net.run net;
  let pep = Domain.expose_resource d_a ~resource:"shared-ws" () in
  let bob = Vo.client_for vo ~domain:d_b ~user:"bob" (doctor_subject "bob") in
  let got = ref None in
  Client.request bob ~pep:(Pep.node pep) ~action:"read" (fun r -> got := Some r);
  Net.run net;
  (match !got with
  | Some (Ok (Wire.Denied _)) -> ()
  | _ -> Alcotest.fail "local deny must override the VO grant");
  (* Another doctor is still fine. *)
  let carol = Vo.client_for vo ~domain:d_b ~user:"carol" (doctor_subject "carol") in
  Client.request carol ~pep:(Pep.node pep) ~action:"read" (fun r -> got := Some r);
  Net.run net;
  match !got with
  | Some (Ok (Wire.Granted _)) -> ()
  | _ -> Alcotest.fail "expected grant for carol"

let test_vo_push_model_with_vo_cas () =
  (* Push model inside the VO: capability from the VO capability service,
     honoured by a push-mode PEP in a member domain. *)
  let net, services, vo, d_a, d_b, _ = make_vo () in
  Vo.publish_policy vo (doctor_read_policy ~id:"vo-policy" ~issuer:"vo" "shared-ws");
  Net.run net;
  let pep_node = "org-a.pep-push.shared-ws" in
  Net.add_node net pep_node;
  ignore
    (Pep.create services ~node:pep_node ~domain:"org-a" ~resource:"shared-ws"
       ~audit:(Domain.audit d_a)
       (Pep.Push
          {
            trusted_issuer = Vo.issuer_key vo;
            check_revocation = None;
            local_pdp = None;
          }));
  let client = Vo.client_for vo ~domain:d_b ~user:"dave" (doctor_subject "dave") in
  let got = ref None in
  Client.request_with_capability client
    ~capability_service:(Capability_service.node (Vo.capability_service vo))
    ~pep:pep_node ~resource:"shared-ws" ~action:"read" (fun r -> got := Some r);
  Net.run net;
  match !got with
  | Some (Ok (Wire.Granted _)) -> ()
  | _ -> Alcotest.fail "expected push-model grant in the VO"

let test_vo_merged_audit () =
  let net, _services, vo, d_a, d_b, _ = make_vo () in
  Vo.publish_policy vo (doctor_read_policy ~id:"vo-policy" ~issuer:"vo" "shared-ws");
  Net.run net;
  let pep_a = Domain.expose_resource d_a ~resource:"shared-ws" () in
  let pep_b = Domain.expose_resource d_b ~resource:"shared-ws" () in
  let alice = Vo.client_for vo ~domain:d_a ~user:"alice" (doctor_subject "alice") in
  let done_count = ref 0 in
  Client.request alice ~pep:(Pep.node pep_a) ~action:"read" (fun _ -> incr done_count);
  Client.request alice ~pep:(Pep.node pep_b) ~action:"read" (fun _ -> incr done_count);
  Net.run net;
  check int_ "both replied" 2 !done_count;
  let merged = Vo.merged_audit vo in
  check int_ "two entries across domains" 2 (Audit.size merged);
  check bool_ "both domains present" true
    (List.sort_uniq compare (List.map (fun e -> e.Audit.domain) (Audit.entries merged))
    = [ "org-a"; "org-b" ])

(* --- dependability: replication and failover under faults ------------------------- *)

let test_replicated_pdps_survive_crash () =
  let net, services = fresh () in
  let domain = Domain.create services ~name:"d" () in
  Domain.set_local_policy domain (doctor_read_policy "ws");
  (* A second PDP replica fed by the same PAP. *)
  Net.add_node net "d.pdp2";
  ignore
    (Pdp_service.create services ~node:"d.pdp2" ~name:"d-pdp2" ~pap:(Domain.pap_node domain) ());
  let pep =
    Domain.expose_resource domain ~resource:"ws"
      ~pdps:[ Domain.pdp_node domain; "d.pdp2" ]
      ~call_timeout:0.3 ()
  in
  Net.add_node net "c";
  let client = Client.create services ~node:"c" ~subject:(doctor_subject "alice") in
  let succeeded = ref 0 and failed = ref 0 in
  let request () =
    Client.request client ~pep:(Pep.node pep) ~action:"read" ~timeout:5.0 (fun r ->
        match r with
        | Ok (Wire.Granted _) -> incr succeeded
        | _ -> incr failed)
  in
  request ();
  Net.run net;
  check int_ "baseline ok" 1 !succeeded;
  (* Crash the primary: requests keep succeeding via the replica. *)
  Net.crash net (Domain.pdp_node domain);
  request ();
  Net.run net;
  check int_ "survived primary crash" 2 !succeeded;
  check int_ "no failures" 0 !failed;
  check bool_ "failover recorded" true ((Pep.stats pep).Pep.failovers > 0);
  (* Recover the primary, crash the replica: still fine. *)
  Net.recover net (Domain.pdp_node domain);
  Net.crash net "d.pdp2";
  request ();
  Net.run net;
  check int_ "back on primary" 3 !succeeded

let test_partition_heals () =
  let net, services = fresh () in
  let domain = Domain.create services ~name:"d" () in
  Domain.set_local_policy domain (doctor_read_policy "ws");
  let pep = Domain.expose_resource domain ~resource:"ws" ~call_timeout:0.3 () in
  Net.add_node net "c";
  let client = Client.create services ~node:"c" ~subject:(doctor_subject "alice") in
  (* Partition the PEP from the PDP: requests fail closed. *)
  Net.partition net [ Pep.node pep ] [ Domain.pdp_node domain ];
  let got = ref None in
  Client.request client ~pep:(Pep.node pep) ~action:"read" ~timeout:5.0 (fun r -> got := Some r);
  Net.run net;
  (match !got with
  | Some (Ok (Wire.Denied _)) -> ()
  | _ -> Alcotest.fail "expected fail-closed deny during the partition");
  Net.heal net;
  Client.request client ~pep:(Pep.node pep) ~action:"read" ~timeout:5.0 (fun r -> got := Some r);
  Net.run net;
  match !got with
  | Some (Ok (Wire.Granted _)) -> ()
  | _ -> Alcotest.fail "expected grant after healing"

let test_lossy_network_with_cache () =
  (* Under heavy loss, cached decisions keep the success rate up even
     though PDP calls time out. *)
  let net, services = fresh () in
  let domain = Domain.create services ~name:"d" () in
  Domain.set_local_policy domain (doctor_read_policy "ws");
  let cache = Decision_cache.create ~ttl:1000.0 () in
  let pep = Domain.expose_resource domain ~resource:"ws" ~cache ~call_timeout:0.3 () in
  Net.add_node net "c";
  let client = Client.create services ~node:"c" ~subject:(doctor_subject "alice") in
  (* Warm the cache on a healthy network. *)
  let granted = ref 0 in
  Client.request client ~pep:(Pep.node pep) ~action:"read" ~timeout:5.0 (fun r ->
      match r with Ok (Wire.Granted _) -> incr granted | _ -> ());
  Net.run net;
  check int_ "warmed" 1 !granted;
  (* Now drop 80% of messages; the client-PEP link may still fail, so we
     count only delivered requests — cache keeps PEP-side cost zero. *)
  Net.set_drop_rate net 0.8;
  for _ = 1 to 20 do
    Client.request client ~pep:(Pep.node pep) ~action:"read" ~timeout:2.0 (fun _ -> ())
  done;
  Net.run net;
  let s = Pep.stats pep in
  check bool_ "cache served the survivors" true (s.Pep.cache_hits > 0);
  check int_ "no further PDP calls" 1 s.Pep.pdp_calls

(* --- staleness: the cache/revocation trade ------------------------------------------ *)

let test_cache_staleness_window () =
  let net, services = fresh () in
  let domain = Domain.create services ~name:"d" () in
  Domain.set_local_policy domain (doctor_read_policy "ws");
  let cache = Decision_cache.create ~ttl:50.0 () in
  let pep = Domain.expose_resource domain ~resource:"ws" ~cache () in
  Net.add_node net "c";
  let client = Client.create services ~node:"c" ~subject:(doctor_subject "alice") in
  let outcome = ref None in
  let request () =
    Client.request client ~pep:(Pep.node pep) ~action:"read" ~timeout:5.0 (fun r -> outcome := Some r);
    Net.run net
  in
  request ();
  check bool_ "initial grant" true (match !outcome with Some (Ok (Wire.Granted _)) -> true | _ -> false);
  (* Revoke by replacing the policy *at the PAP only* — simulating an
     administrator who cannot reach every PEP cache. *)
  Pap.publish (Domain.pap domain) (Policy.Inline_policy (Policy.make ~id:"lockdown" [ Rule.deny "d" ]));
  (* Within the TTL the stale Permit is still served: a false positive. *)
  request ();
  check bool_ "stale permit inside TTL" true
    (match !outcome with Some (Ok (Wire.Granted _)) -> true | _ -> false);
  (* After the TTL the PEP asks the PDP again and learns of the deny. *)
  Dacs_net.Engine.schedule (Net.engine net) ~delay:60.0 (fun () ->
      Client.request client ~pep:(Pep.node pep) ~action:"read" ~timeout:5.0 (fun r -> outcome := Some r));
  Net.run net;
  check bool_ "deny after TTL" true
    (match !outcome with Some (Ok (Wire.Denied _)) -> true | _ -> false)


(* --- RBAC-backed domain ------------------------------------------------------ *)

let test_domain_set_rbac () =
  let net, services = fresh () in
  let domain = Domain.create services ~name:"clinic" () in
  let ok = function Ok v -> v | Error e -> Alcotest.fail e in
  let m = Dacs_rbac.Rbac.empty in
  let m = List.fold_left Dacs_rbac.Rbac.add_role m [ "nurse"; "doctor" ] in
  let m = ok (Dacs_rbac.Rbac.add_inheritance m ~senior:"doctor" ~junior:"nurse") in
  let m = ok (Dacs_rbac.Rbac.grant_permission m "nurse" { Dacs_rbac.Rbac.action = "read"; resource = "vitals" }) in
  let m = ok (Dacs_rbac.Rbac.assign_user m "dora" "doctor") in
  let m = ok (Dacs_rbac.Rbac.assign_user m "ned" "nurse") in
  Domain.set_rbac domain m;
  let pep = Domain.expose_resource domain ~resource:"vitals" () in
  Net.add_node net "c";
  (* The client presents only its identity; roles come from the PIP. *)
  let request user k =
    let client = Client.create services ~node:"c" ~subject:[ ("subject-id", Value.String user) ] in
    Client.request client ~pep:(Pep.node pep) ~action:"read" k;
    Net.run net
  in
  let got = ref None in
  request "dora" (fun r -> got := Some r);
  (match !got with
  | Some (Ok (Wire.Granted _)) -> ()
  | _ -> Alcotest.fail "doctor (inheriting nurse) should read vitals");
  request "ned" (fun r -> got := Some r);
  (match !got with
  | Some (Ok (Wire.Granted _)) -> ()
  | _ -> Alcotest.fail "nurse should read vitals");
  request "stranger" (fun r -> got := Some r);
  match !got with
  | Some (Ok (Wire.Denied _)) -> ()
  | _ -> Alcotest.fail "unknown user must be denied"

(* --- scale: a larger federation under mixed load ------------------------------- *)

let test_vo_at_scale () =
  (* 12 domains, 60 users, 240 mixed requests with caches, syndication and
     cross-domain traffic: everything stays consistent and audited. *)
  let net, services = fresh () in
  let n_domains = 12 and users_per_domain = 5 in
  let domains =
    List.init n_domains (fun i -> Domain.create services ~name:(Printf.sprintf "org%02d" i) ())
  in
  let vo = Vo.form services ~name:"big-vo" domains in
  Vo.publish_policy vo
    (Policy.Inline_policy
       (Policy.make ~id:"vo-policy" ~issuer:"big-vo" ~rule_combining:Combine.First_applicable
          [
            Rule.permit
              ~target:Target.(any |> action_is "action-id" "read")
              ~condition:(Expr.one_of (Expr.subject_attr "role") [ "member" ])
              "members-read";
            Rule.deny "default-deny";
          ]));
  Net.run net;
  let peps =
    List.map
      (fun d ->
        Domain.expose_resource d ~resource:"shared"
          ~cache:(Decision_cache.create ~ttl:300.0 ())
          ())
      domains
  in
  let clients =
    List.concat
      (List.mapi
         (fun di d ->
           List.init users_per_domain (fun ui ->
               let user = Printf.sprintf "u%02d-%d" di ui in
               let role = if ui = users_per_domain - 1 then "guest" else "member" in
               Vo.client_for vo ~domain:d ~user
                 [ ("subject-id", Value.String user); ("role", Value.String role) ]))
         domains)
  in
  let granted = ref 0 and denied = ref 0 and errors = ref 0 in
  let rng = Dacs_crypto.Rng.create 123L in
  let total = 240 in
  for i = 1 to total do
    let client = Dacs_crypto.Rng.pick rng clients in
    let pep = Dacs_crypto.Rng.pick rng peps in
    Engine.schedule (Net.engine net) ~delay:(float_of_int i *. 0.1) (fun () ->
        Client.request client ~pep:(Pep.node pep) ~action:"read" ~timeout:10.0 (function
          | Ok (Wire.Granted _) -> incr granted
          | Ok (Wire.Denied _) -> incr denied
          | Error _ -> incr errors))
  done;
  Net.run net;
  check int_ "all requests answered" total (!granted + !denied + !errors);
  check int_ "no transport errors" 0 !errors;
  check bool_ "grants happened" true (!granted > 0);
  check bool_ "denies happened (guests)" true (!denied > 0);
  (* Audit consistency: one entry per answered request, consolidated. *)
  check int_ "audit entries match" total (Audit.size (Vo.merged_audit vo));
  (* Caches actually absorbed load. *)
  let cache_hits =
    List.fold_left (fun acc pep -> acc + (Pep.stats pep).Pep.cache_hits) 0 peps
  in
  check bool_ "caches used" true (cache_hits > 0)

let () =
  Alcotest.run "dacs_integration"
    [
      ( "domain",
        [
          Alcotest.test_case "end to end" `Quick test_domain_end_to_end;
          Alcotest.test_case "PIP attribute pull" `Quick test_domain_pdp_pulls_attributes_from_pip;
          Alcotest.test_case "policy change takes effect" `Quick test_domain_policy_change_invalidates;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fig.3 pull sequence" `Quick test_fig3_pull_message_sequence;
          Alcotest.test_case "fig.2 push sequence" `Quick test_fig2_push_message_sequence;
        ] );
      ( "vo",
        [
          Alcotest.test_case "formation" `Quick test_vo_formation;
          Alcotest.test_case "policy syndication" `Quick test_vo_policy_syndication;
          Alcotest.test_case "cross-domain access" `Quick test_vo_cross_domain_access;
          Alcotest.test_case "domain autonomy" `Quick test_vo_domain_autonomy;
          Alcotest.test_case "push model via VO CAS" `Quick test_vo_push_model_with_vo_cas;
          Alcotest.test_case "merged audit" `Quick test_vo_merged_audit;
        ] );
      ( "rbac-domain",
        [ Alcotest.test_case "RBAC-backed domain" `Quick test_domain_set_rbac ] );
      ( "scale",
        [ Alcotest.test_case "12-domain federation under load" `Slow test_vo_at_scale ] );
      ( "dependability",
        [
          Alcotest.test_case "replicated PDPs survive crash" `Quick test_replicated_pdps_survive_crash;
          Alcotest.test_case "partition heals" `Quick test_partition_heals;
          Alcotest.test_case "lossy network with cache" `Quick test_lossy_network_with_cache;
          Alcotest.test_case "cache staleness window" `Quick test_cache_staleness_window;
        ] );
    ]
