lib/simnet/engine.mli: Dacs_crypto
