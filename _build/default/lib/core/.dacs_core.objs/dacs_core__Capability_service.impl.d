lib/core/capability_service.ml: Dacs_crypto Dacs_net Dacs_policy Dacs_saml Dacs_ws Hashtbl List Printf Wire
