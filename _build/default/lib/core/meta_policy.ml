module Decision = Dacs_policy.Decision

type coi_class = {
  class_name : string;
  datasets : (string * string list) list;
}

type t =
  | Chinese_wall of coi_class list
  | Dynamic_resource_sod of { name : string; resources : string list; limit : int }

let datasets_of_resource cls resource =
  List.filter_map
    (fun (name, resources) -> if List.mem resource resources then Some name else None)
    cls.datasets

let check meta ~history ~subject ~resource =
  let touched = Audit.permitted_resources history ~subject in
  match meta with
  | Chinese_wall classes ->
    let violation =
      List.find_map
        (fun cls ->
          match datasets_of_resource cls resource with
          | [] -> None
          | requested_datasets ->
            (* Any previously touched dataset of the same class that is
               not one of the requested resource's datasets builds the
               wall. *)
            let touched_datasets =
              List.concat_map (fun r -> datasets_of_resource cls r) touched
              |> List.sort_uniq compare
            in
            let foreign =
              List.filter (fun d -> not (List.mem d requested_datasets)) touched_datasets
            in
            (match foreign with
            | [] -> None
            | d :: _ ->
              Some
                (Printf.sprintf
                   "Chinese wall %s: subject already accessed dataset %s of the same conflict class"
                   cls.class_name d)))
        classes
    in
    (match violation with None -> Ok () | Some reason -> Error reason)
  | Dynamic_resource_sod { name; resources; limit } ->
    if not (List.mem resource resources) then Ok ()
    else begin
      let already = List.filter (fun r -> List.mem r resources && r <> resource) touched in
      (* Accessing [resource] would make it |already| + 1 distinct ones. *)
      if List.length already + 1 >= limit then
        Error
          (Printf.sprintf "separation-of-duty constraint %s: access to %d of the restricted resources"
             name (List.length already + 1))
      else Ok ()
    end

let check_all metas ~history ~subject ~resource =
  let rec go = function
    | [] -> Ok ()
    | m :: rest -> (
      match check m ~history ~subject ~resource with
      | Ok () -> go rest
      | Error _ as e -> e)
  in
  go metas

let guard metas ~history ~subject ~resource (result : Decision.result) =
  match result.Decision.decision with
  | Decision.Permit -> (
    match check_all metas ~history ~subject ~resource with
    | Ok () -> result
    | Error _reason -> { Decision.decision = Decision.Deny; obligations = [] })
  | Decision.Deny | Decision.Not_applicable | Decision.Indeterminate _ -> result
