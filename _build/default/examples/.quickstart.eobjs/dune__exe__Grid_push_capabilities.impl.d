examples/grid_push_capabilities.ml: Capability_service Client Dacs_core Dacs_crypto Dacs_net Dacs_policy Dacs_saml Dacs_ws Pdp_service Pep Printf Wire
