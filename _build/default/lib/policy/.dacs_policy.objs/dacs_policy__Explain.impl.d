lib/policy/explain.ml: Buffer Combine Decision Expr Format List Option Policy Printf Rule String Target
