module Decision = Dacs_policy.Decision
module Metrics = Dacs_telemetry.Metrics
module Trace = Dacs_telemetry.Trace

let telemetry services =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let m = Dacs_ws.Service.metrics services in
  let tr = Dacs_ws.Service.tracer services in
  line "telemetry:";
  line "  registry: %d series" (Metrics.series_count m);
  line "  rpc: %d calls, %d errors, %d retries, %d breaker trips (%d rejections)"
    (Metrics.sum_counter m "rpc_calls_total")
    (Metrics.sum_counter m "rpc_errors_total")
    (Metrics.sum_counter m "rpc_retries_total")
    (Metrics.sum_counter m "rpc_breaker_trips_total")
    (Metrics.sum_counter m "rpc_breaker_rejections_total");
  (if Trace.enabled tr then
     line "  tracing: on, %d spans across %d traces" (Trace.span_count tr)
       (List.length (Trace.trace_ids tr))
   else line "  tracing: off");
  Buffer.contents buf

(* --- latency attribution ------------------------------------------------- *)

(* Per-stage breakdown of the serving path's latency histograms: one line
   per (metric, label set) with count, p50/p99 and the exemplars linking
   buckets back to trace ids. *)
let attribution_metrics =
  [
    ("pep_decide_seconds", "decision ladder");
    ("pep_queue_wait_seconds", "admission queue wait");
    ("pep_l2_lookup_seconds", "L2 round trip");
    ("pep_live_call_seconds", "live tier call");
    ("pdp_eval_seconds", "policy evaluation");
    ("pdp_pip_fetch_seconds", "PIP batch fetch");
  ]

let attribution services =
  let m = Dacs_ws.Service.metrics services in
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "latency attribution:";
  let any = ref false in
  List.iter
    (fun sample ->
      match List.assoc_opt sample.Metrics.name attribution_metrics with
      | None -> ()
      | Some what -> (
        match sample.Metrics.value with
        | Metrics.Histogram { count; _ } when count > 0 ->
          any := true;
          let h =
            Metrics.histogram m ~labels:sample.Metrics.labels sample.Metrics.name
          in
          let labels =
            String.concat ","
              (List.map (fun (k, v) -> k ^ "=" ^ v) sample.Metrics.labels)
          in
          line "  %-24s {%s} %d obs, p50 %.1fms, p99 %.1fms  (%s)" sample.Metrics.name
            labels count
            (Metrics.quantile h 0.5 *. 1000.0)
            (Metrics.quantile h 0.99 *. 1000.0)
            what;
          List.iter
            (fun (le, e) ->
              line "    le=%s exemplar trace=%s value=%.1fms @%.3fs"
                (if le = infinity then "+Inf" else Printf.sprintf "%g" le)
                e.Metrics.e_trace (e.Metrics.e_value *. 1000.0) e.Metrics.e_at)
            (Metrics.histogram_exemplars h)
        | _ -> ()))
    (Metrics.snapshot m);
  if not !any then line "  (no serving-path observations)";
  Buffer.contents buf

let critical_path ?trace_id services =
  let tr = Dacs_ws.Service.tracer services in
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  match Trace.critical_path ?trace_id tr with
  | [] -> "critical path: (no spans recorded)\n"
  | path ->
    let root = List.hd path in
    let dur (s : Trace.span_view) =
      match s.Trace.v_end with Some e -> e -. s.Trace.v_start | None -> 0.0
    in
    line "critical path (trace %Lx, %.1fms end to end):" root.Trace.v_trace_id
      (dur root *. 1000.0);
    List.iter
      (fun (s : Trace.span_view) ->
        line "  %-28s +%.1fms %.1fms" s.Trace.v_name
          ((s.Trace.v_start -. root.Trace.v_start) *. 1000.0)
          (dur s *. 1000.0))
      path;
    Buffer.contents buf

let domain d =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "domain %s" (Domain.name d);
  line "  PAP %-24s version %d, %d queries served, %d/%d updates accepted/rejected"
    (Domain.pap_node d) (Pap.version (Domain.pap d))
    (Pap.queries_served (Domain.pap d))
    (Pap.updates_accepted (Domain.pap d))
    (Pap.updates_rejected (Domain.pap d));
  let s = Pdp_service.stats (Domain.pdp d) in
  line "  PDP %-24s %d queries (%d permit / %d deny), %d PIP fetches, %d PAP fetches"
    (Domain.pdp_node d) s.Pdp_service.queries s.Pdp_service.permits s.Pdp_service.denies
    s.Pdp_service.pip_fetches s.Pdp_service.pap_fetches;
  line "  PIP %-24s %d lookups served" (Domain.pip_node d) (Pip.lookups_served (Domain.pip d));
  line "  IdP %-24s %d assertions issued" (Domain.idp_node d) (Idp.issued_count (Domain.idp d));
  List.iter
    (fun pep ->
      let ps = Pep.stats pep in
      line "  PEP %-24s %d requests: %d granted, %d denied (%d cache hits, %d failovers)"
        (Pep.node pep) ps.Pep.requests ps.Pep.granted ps.Pep.denied ps.Pep.cache_hits
        ps.Pep.failovers;
      if ps.Pep.retries + ps.Pep.breaker_trips + ps.Pep.stale_serves > 0 then
        line "  %-28s resilience: %d retries, %d breaker trips (%d rejections), %d stale serves"
          "" ps.Pep.retries ps.Pep.breaker_trips ps.Pep.breaker_rejections ps.Pep.stale_serves)
    (Domain.peps d);
  line "  audit: %d entries" (Audit.size (Domain.audit d));
  Buffer.contents buf

let vo v =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "virtual organisation %s: %d domains" (Vo.name v) (List.length (Vo.domains v));
  line "  VO PAP version %d (%d subscribers)"
    (Pap.version (Vo.vo_pap v))
    (List.length (Pap.subscribers (Vo.vo_pap v)));
  line "  capability service: %d issued" (Capability_service.issued_count (Vo.capability_service v));
  Buffer.add_char buf '\n';
  List.iter (fun d -> Buffer.add_string buf (domain d)) (Vo.domains v);
  (* Consolidated audit summary. *)
  let merged = Vo.merged_audit v in
  line "\nconsolidated audit (%d entries):" (Audit.size merged);
  List.iter
    (fun d ->
      let per_domain = List.filter (fun e -> e.Audit.domain = Domain.name d) (Audit.entries merged) in
      let permits = List.length (List.filter (fun e -> e.Audit.decision = Decision.Permit) per_domain) in
      line "  %-16s %4d decisions (%d permits, %d others)" (Domain.name d)
        (List.length per_domain) permits
        (List.length per_domain - permits))
    (Vo.domains v);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (telemetry (Vo.services v));
  Buffer.contents buf
