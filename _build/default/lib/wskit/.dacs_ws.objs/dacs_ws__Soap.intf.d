lib/wskit/soap.mli: Dacs_xml
