(** X.509 attribute-certificate encoding of capabilities (VOMS style).

    The paper contrasts CAS and VOMS: "Both solutions differ with respect
    to the format of the capabilities that are issued" — CAS encodes them
    as SAML assertions, VOMS as extended X.509 attribute certificates.
    This module is the second wire format for the same logical capability:
    {!to_xml}/{!of_xml} convert between an {!Assertion.t} and an
    [X509AttributeCertificate] document (holder, issuer, serial, validity,
    attributes, authorisation decisions, signature).  The signature is the
    issuer's signature over the capability's canonical logical payload, so
    a capability re-encoded between formats keeps verifying.  (Exactly
    for the shape the capability services issue: one leading attribute
    statement followed by decision statements — the codec normalises to
    that order.) *)

val to_xml : Assertion.t -> Dacs_xml.Xml.t
val of_xml : Dacs_xml.Xml.t -> (Assertion.t, string) result

val to_string : Assertion.t -> string
val of_string : string -> (Assertion.t, string) result

val element_name : string
(** ["X509AttributeCertificate"], the root element this codec produces. *)
