lib/core/pip.ml: Dacs_net Dacs_policy Dacs_ws Hashtbl Option Wire
