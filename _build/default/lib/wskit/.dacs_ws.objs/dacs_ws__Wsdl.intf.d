lib/wskit/wsdl.mli: Dacs_net Dacs_xml Service
