(** Decision cache for enforcement points (§3.2 communication
    performance).

    Caching authorisation decisions cuts PEP→PDP traffic at the price the
    paper warns about: entries may outlive the policy that produced them,
    yielding stale (false-positive or false-negative) decisions until the
    TTL lapses.  The experiments measure both sides of that trade. *)

type t

val create : ?max_entries:int -> ttl:float -> unit -> t
(** [max_entries] defaults to 1024; insertion past the limit evicts the
    oldest entry. *)

val ttl : t -> float

val get : t -> now:float -> key:string -> Dacs_policy.Decision.result option
(** [None] on miss or expiry (expired entries are dropped). *)

val put : t -> now:float -> key:string -> Dacs_policy.Decision.result -> unit

val invalidate : t -> key:string -> unit
val invalidate_all : t -> unit
(** What a PEP does when told the policy changed. *)

val size : t -> int

type stats = { hits : int; misses : int; expiries : int; evictions : int }

val stats : t -> stats

val request_key : Dacs_policy.Context.t -> string
(** Canonical cache key over the subject, resource and action attributes.
    Environment attributes (e.g. the request time) are deliberately
    excluded — they change on every request, and a cached decision is
    precisely one that skips re-evaluating them until the TTL lapses. *)
