module Metrics = Dacs_telemetry.Metrics
module Trace = Dacs_telemetry.Trace

type error =
  | Timeout
  | No_such_service of string
  | Circuit_open of Net.node_id

let error_to_string = function
  | Timeout -> "timeout"
  | No_such_service s -> Printf.sprintf "no such service: %s" s
  | Circuit_open n -> Printf.sprintf "circuit open towards %s" n

(* --- resilience configuration ------------------------------------------- *)

type retry_policy = {
  attempts : int;
  base_delay : float;
  multiplier : float;
  max_delay : float;
  jitter : float;
}

let no_retry = { attempts = 1; base_delay = 0.0; multiplier = 1.0; max_delay = 0.0; jitter = 0.0 }

let default_retry =
  { attempts = 3; base_delay = 0.05; multiplier = 2.0; max_delay = 2.0; jitter = 0.2 }

type breaker_config = { failure_threshold : int; cooldown : float }

let default_breaker = { failure_threshold = 5; cooldown = 2.0 }

type breaker_state = Closed | Open | Half_open

let breaker_state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type breaker = {
  mutable b_state : breaker_state;
  mutable consecutive_failures : int;
  mutable opened_at : float;
  mutable probe_in_flight : bool;
}

type resilience_event =
  | Attempt_failed of { target : Net.node_id; attempt : int; error : error }
  | Retrying of { target : Net.node_id; attempt : int; delay : float }
  | Breaker_opened of Net.node_id
  | Breaker_half_opened of Net.node_id
  | Breaker_closed of Net.node_id
  | Breaker_rejected of Net.node_id

type resilience_stats = { retries : int; breaker_trips : int; breaker_rejections : int }

type pending = { k : (string, error) result -> unit }

type t = {
  net : Net.t;
  services : (Net.node_id * string, caller:Net.node_id -> string -> (string -> unit) -> unit) Hashtbl.t;
  pending : (int, pending) Hashtbl.t;
  mutable next_id : int;
  mutable breaker_config : breaker_config option;
  breakers : (Net.node_id, breaker) Hashtbl.t;
  metrics : Metrics.t;
  tracer : Trace.t;
}

(* Resilience counters are labelled by the calling node, so a component
   resetting "its" series (e.g. Pep.reset_stats) and the bus-wide
   resilience_stats sum stay consistent: there is only one cell. *)
let retries_counter t src =
  Metrics.counter t.metrics ~help:"Resilient-call retry attempts issued."
    ~labels:[ ("src", src) ]
    "rpc_retries_total"

let trips_counter t src =
  Metrics.counter t.metrics ~help:"Circuit-breaker opens observed."
    ~labels:[ ("src", src) ]
    "rpc_breaker_trips_total"

let rejections_counter t src =
  Metrics.counter t.metrics ~help:"Calls shed by an open breaker."
    ~labels:[ ("src", src) ]
    "rpc_breaker_rejections_total"

let calls_counter t service =
  Metrics.counter t.metrics ~help:"RPC calls issued."
    ~labels:[ ("service", service) ]
    "rpc_calls_total"

let errors_counter t service =
  Metrics.counter t.metrics ~help:"RPC calls that failed (timeout, missing service, shed)."
    ~labels:[ ("service", service) ]
    "rpc_errors_total"

let served_counter t service =
  Metrics.counter t.metrics ~help:"RPC requests dispatched to a handler."
    ~labels:[ ("service", service) ]
    "rpc_requests_served_total"

let latency_histogram t service =
  Metrics.histogram t.metrics ~help:"Round-trip latency of RPC calls (virtual seconds)."
    ~labels:[ ("service", service) ]
    "rpc_call_latency_seconds"

let inflight_gauge t =
  Metrics.gauge t.metrics ~help:"RPC calls awaiting a reply." "rpc_calls_in_flight"

let batches_counter t service =
  Metrics.counter t.metrics ~help:"Batched RPC round-trips issued."
    ~labels:[ ("service", service) ]
    "rpc_batches_total"

let batch_parts_counter t service =
  Metrics.counter t.metrics ~help:"Individual queries carried inside batched round-trips."
    ~labels:[ ("service", service) ]
    "rpc_batch_parts_total"

let batch_size_buckets = [ 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0 ]

let batch_size_histogram t service =
  Metrics.histogram t.metrics ~help:"Queries coalesced per batched round-trip."
    ~labels:[ ("service", service) ]
    ~buckets:batch_size_buckets "rpc_batch_size"

(* Wire format: kind '|' id '|' service '|' body.  The few header bytes
   model transport framing; the body carries the real (XML) payload whose
   size dominates.  The body is the unframed remainder and may contain
   anything; the service name is percent-escaped so that '|' (and '%')
   in a service name cannot break the framing. *)

let escape_service s =
  if String.contains s '|' || String.contains s '%' then begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (function
        | '|' -> Buffer.add_string buf "%7C"
        | '%' -> Buffer.add_string buf "%25"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end
  else s

let unescape_service s =
  if not (String.contains s '%') then s
  else begin
    let n = String.length s in
    let buf = Buffer.create n in
    let i = ref 0 in
    while !i < n do
      if s.[!i] = '%' && !i + 2 < n && s.[!i + 1] = '7' && s.[!i + 2] = 'C' then begin
        Buffer.add_char buf '|';
        i := !i + 3
      end
      else if s.[!i] = '%' && !i + 2 < n && s.[!i + 1] = '2' && s.[!i + 2] = '5' then begin
        Buffer.add_char buf '%';
        i := !i + 3
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  end

(* Batch bodies: length-prefixed parts ("<len>:<bytes>..."), so parts may
   contain anything — including '|' and further frames. *)

let encode_parts parts =
  let buf = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string buf (string_of_int (String.length p));
      Buffer.add_char buf ':';
      Buffer.add_string buf p)
    parts;
  Buffer.contents buf

let decode_parts s =
  let n = String.length s in
  let rec go acc i =
    if i = n then Some (List.rev acc)
    else
      match String.index_from_opt s i ':' with
      | None -> None
      | Some colon -> (
        match int_of_string_opt (String.sub s i (colon - i)) with
        | None -> None
        | Some len ->
          if len < 0 || colon + 1 + len > n then None
          else go (String.sub s (colon + 1) len :: acc) (colon + 1 + len))
  in
  go [] 0

let encode_request id service body = Printf.sprintf "Q|%d|%s|%s" id (escape_service service) body

(* The trace context travels as one extra escaped header segment; replies
   need none (the pending table already knows which span awaits them). *)
let encode_traced_request id service ~trace body =
  Printf.sprintf "T|%d|%s|%s|%s" id (escape_service service) (escape_service trace) body

let encode_reply id body = Printf.sprintf "A|%d||%s" id body
let encode_error id msg = Printf.sprintf "E|%d||%s" id msg

let encode_batch_request id service parts =
  Printf.sprintf "B|%d|%s|%s" id (escape_service service) (encode_parts parts)

let encode_traced_batch_request id service ~trace parts =
  Printf.sprintf "BT|%d|%s|%s|%s" id (escape_service service) (escape_service trace)
    (encode_parts parts)

type frame =
  | Request of int * string * string
  | Traced_request of { id : int; service : string; trace : string; body : string }
  | Batch_request of int * string * string list
  | Traced_batch_request of { id : int; service : string; trace : string; parts : string list }
  | Reply of int * string
  | Error_frame of int * string

let decode payload =
  match String.index_opt payload '|' with
  | None -> None
  | Some first -> (
    let kind = String.sub payload 0 first in
    match String.index_from_opt payload (first + 1) '|' with
    | None -> None
    | Some second -> (
      let id = int_of_string_opt (String.sub payload (first + 1) (second - first - 1)) in
      match (id, String.index_from_opt payload (second + 1) '|') with
      | Some id, Some third ->
        let service = unescape_service (String.sub payload (second + 1) (third - second - 1)) in
        let body = String.sub payload (third + 1) (String.length payload - third - 1) in
        let traced k =
          match String.index_from_opt payload (third + 1) '|' with
          | None -> None
          | Some fourth ->
            let trace = unescape_service (String.sub payload (third + 1) (fourth - third - 1)) in
            let body = String.sub payload (fourth + 1) (String.length payload - fourth - 1) in
            k trace body
        in
        (match kind with
        | "Q" -> Some (Request (id, service, body))
        | "T" -> traced (fun trace body -> Some (Traced_request { id; service; trace; body }))
        | "B" ->
          Option.map (fun parts -> Batch_request (id, service, parts)) (decode_parts body)
        | "BT" ->
          traced (fun trace body ->
              Option.map
                (fun parts -> Traced_batch_request { id; service; trace; parts })
                (decode_parts body))
        | "A" -> Some (Reply (id, body))
        | "E" -> Some (Error_frame (id, body))
        | _ -> None)
      | _ -> None))
  [@@warning "-4"]

let dispatch_request t (msg : Net.message) id service trace body =
  match Hashtbl.find_opt t.services (msg.Net.dst, service) with
  | None ->
    Net.send t.net ~src:msg.Net.dst ~dst:msg.Net.src ~category:"rpc-error"
      (encode_error id ("no-such-service:" ^ service))
  | Some handler ->
    Metrics.inc (served_counter t service);
    let span =
      if Trace.enabled t.tracer then begin
        let s =
          match trace with
          | Some ctx -> Trace.start_span t.tracer ~parent:ctx ("serve:" ^ service)
          | None -> Trace.start_span t.tracer ("serve:" ^ service)
        in
        Trace.annotate s "node" msg.Net.dst;
        Trace.annotate s "caller" msg.Net.src;
        Some s
      end
      else None
    in
    let reply body =
      (* The server span closes when the handler replies — possibly much
         later than the handler returned, after its own nested calls. *)
      Option.iter (fun s -> Trace.finish t.tracer s) span;
      Net.send t.net ~src:msg.Net.dst ~dst:msg.Net.src ~category:(msg.Net.category ^ "-reply")
        (encode_reply id body)
    in
    let saved = Trace.current t.tracer in
    Option.iter (fun s -> Trace.set_current t.tracer (Some (Trace.context s))) span;
    handler ~caller:msg.Net.src body reply;
    Trace.set_current t.tracer saved

(* A batch dispatches each part to the ordinary per-request handler and
   replies once, when the last part's (possibly asynchronous) reply has
   arrived — one round-trip, one fault envelope for the whole batch. *)
let dispatch_batch t (msg : Net.message) id service trace parts =
  match Hashtbl.find_opt t.services (msg.Net.dst, service) with
  | None ->
    Net.send t.net ~src:msg.Net.dst ~dst:msg.Net.src ~category:"rpc-error"
      (encode_error id ("no-such-service:" ^ service))
  | Some handler ->
    let n = List.length parts in
    Metrics.inc ~by:n (served_counter t service);
    let span =
      if Trace.enabled t.tracer then begin
        let s =
          match trace with
          | Some ctx -> Trace.start_span t.tracer ~parent:ctx ("serve-batch:" ^ service)
          | None -> Trace.start_span t.tracer ("serve-batch:" ^ service)
        in
        Trace.annotate s "node" msg.Net.dst;
        Trace.annotate s "caller" msg.Net.src;
        Trace.annotate s "batch" (string_of_int n);
        Some s
      end
      else None
    in
    let replies = Array.make n "" in
    let outstanding = ref n in
    let reply_part i body =
      replies.(i) <- body;
      decr outstanding;
      if !outstanding = 0 then begin
        Option.iter (fun s -> Trace.finish t.tracer s) span;
        Net.send t.net ~src:msg.Net.dst ~dst:msg.Net.src ~category:(msg.Net.category ^ "-reply")
          (encode_reply id (encode_parts (Array.to_list replies)))
      end
    in
    let saved = Trace.current t.tracer in
    Option.iter (fun s -> Trace.set_current t.tracer (Some (Trace.context s))) span;
    List.iteri (fun i part -> handler ~caller:msg.Net.src part (reply_part i)) parts;
    Trace.set_current t.tracer saved

let handle_message t (msg : Net.message) =
  match decode msg.Net.payload with
  | None -> ()
  | Some (Request (id, service, body)) -> dispatch_request t msg id service None body
  | Some (Traced_request { id; service; trace; body }) ->
    dispatch_request t msg id service (Trace.context_of_string trace) body
  | Some (Batch_request (id, service, parts)) -> dispatch_batch t msg id service None parts
  | Some (Traced_batch_request { id; service; trace; parts }) ->
    dispatch_batch t msg id service (Trace.context_of_string trace) parts
  | Some (Reply (id, body)) -> (
    match Hashtbl.find_opt t.pending id with
    | None -> () (* reply after timeout: drop *)
    | Some p ->
      Hashtbl.remove t.pending id;
      p.k (Ok body))
  | Some (Error_frame (id, msg_body)) -> (
    match Hashtbl.find_opt t.pending id with
    | None -> ()
    | Some p ->
      Hashtbl.remove t.pending id;
      let err =
        match String.index_opt msg_body ':' with
        | Some i when String.sub msg_body 0 i = "no-such-service" ->
          No_such_service (String.sub msg_body (i + 1) (String.length msg_body - i - 1))
        | _ -> Timeout
      in
      p.k (Error err))

let create net =
  let now () = Net.now net in
  let next_id () = Dacs_crypto.Rng.next_int64 (Engine.rng (Net.engine net)) in
  {
    net;
    services = Hashtbl.create 64;
    pending = Hashtbl.create 64;
    next_id = 0;
    breaker_config = None;
    breakers = Hashtbl.create 16;
    metrics = Metrics.create ~now ();
    tracer = Trace.create ~now ~next_id ();
  }

let net t = t.net
let metrics t = t.metrics
let tracer t = t.tracer
let set_tracing t on = Trace.set_enabled t.tracer on

let ensure_dispatch t node =
  Net.add_node t.net node;
  Net.set_handler t.net node (handle_message t)

let serve t ~node ~service handler =
  ensure_dispatch t node;
  Hashtbl.replace t.services (node, service) handler

(* Shared correlation machinery of single and batched calls: id
   allocation, one client span per attempt, the pending-table entry and
   its timeout timer.  [payload] builds the request frame, given the id
   and the optional trace context to carry. *)
let issue t ~src ~dst ~service ?(timeout = 1.0) ?category ~span_label ~annotate_span ~payload k =
  ensure_dispatch t src;
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let started = Net.now t.net in
  (* One client span per call attempt, parented on the ambient context —
     the span under which the caller's code is currently running.  Its
     context rides inside the request frame, and the continuation runs
     with the ambient context restored to the caller's, so nested calls
     made from continuations still stitch into the same tree. *)
  let initiating = Trace.current t.tracer in
  let span =
    if Trace.enabled t.tracer then begin
      let s = Trace.start_span t.tracer (span_label ^ service) in
      Trace.annotate s "src" src;
      Trace.annotate s "dst" dst;
      annotate_span s;
      Some s
    end
    else None
  in
  let finish result =
    Metrics.observe (latency_histogram t service) (Net.now t.net -. started);
    (match result with
    | Ok _ -> ()
    | Error e ->
      Metrics.inc (errors_counter t service);
      Option.iter (fun s -> Trace.set_status s (Trace.Span_error (error_to_string e))) span);
    Option.iter (fun s -> Trace.finish t.tracer s) span;
    Metrics.set_gauge (inflight_gauge t) (float_of_int (Hashtbl.length t.pending));
    let saved = Trace.current t.tracer in
    Trace.set_current t.tracer initiating;
    k result;
    Trace.set_current t.tracer saved
  in
  Hashtbl.replace t.pending id { k = finish };
  Metrics.set_gauge (inflight_gauge t) (float_of_int (Hashtbl.length t.pending));
  let category = Option.value category ~default:service in
  let trace = Option.map (fun s -> Trace.context_to_string (Trace.context s)) span in
  Net.send t.net ~src ~dst ~category (payload id trace);
  Engine.schedule (Net.engine t.net) ~delay:timeout (fun () ->
      match Hashtbl.find_opt t.pending id with
      | None -> ()
      | Some p ->
        Hashtbl.remove t.pending id;
        p.k (Error Timeout))

let call t ~src ~dst ~service ?timeout ?category body k =
  Metrics.inc (calls_counter t service);
  issue t ~src ~dst ~service ?timeout ?category ~span_label:"rpc:" ~annotate_span:ignore
    ~payload:(fun id trace ->
      match trace with
      | Some trace -> encode_traced_request id service ~trace body
      | None -> encode_request id service body)
    k

let call_batch t ~src ~dst ~service ?timeout ?category bodies k =
  let n = List.length bodies in
  if n = 0 then invalid_arg "Rpc.call_batch: empty batch";
  Metrics.inc (calls_counter t service);
  Metrics.inc (batches_counter t service);
  Metrics.inc ~by:n (batch_parts_counter t service);
  Metrics.observe (batch_size_histogram t service) (float_of_int n);
  issue t ~src ~dst ~service ?timeout ?category ~span_label:"rpc-batch:"
    ~annotate_span:(fun s -> Trace.annotate s "batch" (string_of_int n))
    ~payload:(fun id trace ->
      match trace with
      | Some trace -> encode_traced_batch_request id service ~trace bodies
      | None -> encode_batch_request id service bodies)
    (fun result ->
      match result with
      | Error e -> k (Error e)
      | Ok reply -> (
        match decode_parts reply with
        | Some parts when List.length parts = n -> k (Ok parts)
        | Some _ | None ->
          (* A peer that answers with the wrong arity is indistinguishable
             from a lost reply to the caller: fail the whole envelope. *)
          k (Error Timeout)))

let calls_in_flight t = Hashtbl.length t.pending

(* --- circuit breaker ------------------------------------------------------ *)

let set_breaker t config = t.breaker_config <- config

let breaker_for t dst =
  match Hashtbl.find_opt t.breakers dst with
  | Some b -> b
  | None ->
    let b =
      { b_state = Closed; consecutive_failures = 0; opened_at = neg_infinity; probe_in_flight = false }
    in
    Hashtbl.add t.breakers dst b;
    b

let breaker_state t dst =
  match (t.breaker_config, Hashtbl.find_opt t.breakers dst) with
  | None, _ | _, None -> Closed
  | Some cfg, Some b ->
    (* An open breaker past its cooldown admits a probe on the next call;
       report it as half-open so observers see the recoverable state. *)
    (match b.b_state with
    | Open when Net.now t.net >= b.opened_at +. cfg.cooldown -> Half_open
    | s -> s)

(* [true] when the attempt may be sent. *)
let breaker_admit t ~src ~notify dst =
  match t.breaker_config with
  | None -> true
  | Some cfg -> (
    let b = breaker_for t dst in
    let reject () =
      Metrics.inc (rejections_counter t src);
      Trace.record t.tracer ("breaker-rejected " ^ dst);
      notify (Breaker_rejected dst);
      false
    in
    match b.b_state with
    | Closed -> true
    | Open ->
      if Net.now t.net >= b.opened_at +. cfg.cooldown then begin
        b.b_state <- Half_open;
        b.probe_in_flight <- true;
        Trace.record t.tracer ("breaker-half-open " ^ dst);
        notify (Breaker_half_opened dst);
        true
      end
      else reject ()
    | Half_open ->
      if b.probe_in_flight then reject ()
      else begin
        b.probe_in_flight <- true;
        true
      end)

let breaker_success t ~notify dst =
  match t.breaker_config with
  | None -> ()
  | Some _ -> (
    let b = breaker_for t dst in
    match b.b_state with
    | Half_open ->
      b.b_state <- Closed;
      b.probe_in_flight <- false;
      b.consecutive_failures <- 0;
      Trace.record t.tracer ("breaker-closed " ^ dst);
      notify (Breaker_closed dst)
    | Closed -> b.consecutive_failures <- 0
    | Open -> () (* a straggler reply from before the trip; stay open until probed *))

let breaker_failure t ~src ~notify dst =
  match t.breaker_config with
  | None -> ()
  | Some cfg -> (
    let b = breaker_for t dst in
    let trip () =
      b.b_state <- Open;
      b.probe_in_flight <- false;
      b.opened_at <- Net.now t.net;
      Metrics.inc (trips_counter t src);
      Trace.record t.tracer ("breaker-opened " ^ dst);
      notify (Breaker_opened dst)
    in
    match b.b_state with
    | Half_open -> trip ()
    | Closed ->
      b.consecutive_failures <- b.consecutive_failures + 1;
      if b.consecutive_failures >= cfg.failure_threshold then trip ()
    | Open -> ())

(* --- resilient calls ---------------------------------------------------------- *)

let resilience_stats t =
  {
    retries = Metrics.sum_counter t.metrics "rpc_retries_total";
    breaker_trips = Metrics.sum_counter t.metrics "rpc_breaker_trips_total";
    breaker_rejections = Metrics.sum_counter t.metrics "rpc_breaker_rejections_total";
  }

let backoff_delay t retry failures =
  let d = ref retry.base_delay in
  for _ = 2 to failures do
    d := !d *. retry.multiplier
  done;
  let d = Float.min retry.max_delay !d in
  if retry.jitter <= 0.0 then d
  else begin
    (* Deterministic jitter: drawn from the engine's seeded RNG, so a
       rerun with the same seed backs off at exactly the same instants. *)
    let u = Dacs_crypto.Rng.float (Engine.rng (Net.engine t.net)) 1.0 in
    Float.max 0.0 (d *. (1.0 +. (retry.jitter *. ((2.0 *. u) -. 1.0))))
  end

(* The shared retry/breaker envelope: [issue] performs one attempt and
   hands its result to the continuation it is given.  Batched calls reuse
   the exact same envelope, which is what makes a batch "one fault/retry
   unit" — the whole frame succeeds or the whole frame backs off. *)
let resilient_loop (type a) t ~src ~dst ~retry ~notify ~(issue : ((a, error) result -> unit) -> unit)
    (k : (a, error) result -> unit) =
  if retry.attempts < 1 then invalid_arg "Rpc.call_resilient: attempts must be >= 1";
  let engine = Net.engine t.net in
  (* Backoff waits run as fresh engine callbacks with no ambient trace
     context; re-instate the initiator's so every attempt's span lands
     under the same parent. *)
  let initiating = Trace.current t.tracer in
  let rec attempt n =
    let saved = Trace.current t.tracer in
    Trace.set_current t.tracer initiating;
    (if not (breaker_admit t ~src ~notify dst) then after_failure n (Circuit_open dst)
     else
       issue (fun result ->
           match result with
           | Ok reply ->
             breaker_success t ~notify dst;
             k (Ok reply)
           | Error Timeout ->
             breaker_failure t ~src ~notify dst;
             after_failure n Timeout
           | Error (No_such_service _ as e) ->
             (* The target answered: not a health failure, and retrying the
                same missing service cannot succeed. *)
             k (Error e)
           | Error (Circuit_open _ as e) -> after_failure n e));
    Trace.set_current t.tracer saved
  and after_failure n err =
    notify (Attempt_failed { target = dst; attempt = n; error = err });
    if n >= retry.attempts then k (Error err)
    else begin
      let delay = backoff_delay t retry n in
      Metrics.inc (retries_counter t src);
      Trace.record t.tracer
        (Printf.sprintf "retry %d -> %s after %s" (n + 1) dst (error_to_string err));
      notify (Retrying { target = dst; attempt = n + 1; delay });
      Engine.schedule engine ~delay (fun () -> attempt (n + 1))
    end
  in
  attempt 1

let call_resilient t ~src ~dst ~service ?timeout ?category ?(retry = no_retry) ?(notify = ignore)
    body k =
  resilient_loop t ~src ~dst ~retry ~notify
    ~issue:(fun k -> call t ~src ~dst ~service ?timeout ?category body k)
    k

let call_batch_resilient t ~src ~dst ~service ?timeout ?category ?(retry = no_retry)
    ?(notify = ignore) bodies k =
  resilient_loop t ~src ~dst ~retry ~notify
    ~issue:(fun k -> call_batch t ~src ~dst ~service ?timeout ?category bodies k)
    k
