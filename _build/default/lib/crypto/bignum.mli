(** Arbitrary-precision natural numbers.

    Little-endian limbs in base 2{^26}, sized for simulator-scale RSA
    (hundreds to a couple of thousand bits).  All values are non-negative;
    subtraction of a larger from a smaller value is a programming error and
    raises. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int_opt : t -> int option
(** [None] when the value exceeds [max_int]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val is_zero : t -> bool
val is_even : t -> bool

val num_bits : t -> int
(** Position of the highest set bit plus one; [num_bits zero = 0]. *)

val testbit : t -> int -> bool

(** {1 Arithmetic} *)

val add : t -> t -> t

val sub : t -> t -> t
(** @raise Invalid_argument when the result would be negative. *)

val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r] and [r < b].
    @raise Division_by_zero when [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val succ : t -> t
val pred : t -> t

(** {1 Modular arithmetic} *)

val modpow : t -> t -> t -> t
(** [modpow base exp m] is [base]{^ [exp]} mod [m]. @raise Division_by_zero
    when [m] is zero. *)

val gcd : t -> t -> t

val modinv : t -> t -> t option
(** [modinv a m] is [Some x] with [a*x = 1 (mod m)] when
    [gcd a m = 1], else [None]. *)

(** {1 Conversions} *)

val of_bytes_be : string -> t
(** Big-endian byte-string interpretation (leading zeros allowed). *)

val to_bytes_be : t -> string
(** Minimal big-endian encoding; [""] for zero. *)

val to_bytes_be_padded : t -> int -> string
(** Fixed-width big-endian encoding. @raise Invalid_argument when the value
    does not fit. *)

val of_hex : string -> t
val to_hex : t -> string

val of_decimal : string -> t
(** @raise Invalid_argument on non-digit characters or empty input. *)

val to_decimal : t -> string

val pp : Format.formatter -> t -> unit
(** Decimal rendering. *)

(** {1 Random values} *)

val random_bits : Rng.t -> int -> t
(** Uniform over [\[0, 2{^n})]. *)

val random_below : Rng.t -> t -> t
(** Uniform over [\[0, bound)]; [bound] must be non-zero. *)
