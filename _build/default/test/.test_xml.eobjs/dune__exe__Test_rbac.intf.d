test/test_rbac.mli:
