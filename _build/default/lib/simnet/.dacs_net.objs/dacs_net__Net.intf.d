lib/simnet/net.mli: Engine
