type t = {
  lo : float;
  counts : int array;  (* finite buckets 0..n-1, overflow at index n *)
  mutable count : int;
  mutable sum : float;
  mutable max_seen : float;
}

let create ?(lo = 0.0005) ?(buckets = 20) () =
  if lo <= 0.0 then invalid_arg "Loghist.create: lo must be positive";
  if buckets < 1 then invalid_arg "Loghist.create: need at least one bucket";
  { lo; counts = Array.make (buckets + 1) 0; count = 0; sum = 0.0; max_seen = 0.0 }

let buckets t = Array.length t.counts - 1

(* Index of the first bucket whose bound [lo *. 2^i] is >= v, by exponent
   extraction: with v/lo = m * 2^e (m in [0.5, 1)), that index is e — or
   e-1 when v/lo is exactly a power of two. *)
let index t v =
  if v <= t.lo then 0
  else begin
    let m, e = Float.frexp (v /. t.lo) in
    let i = if m = 0.5 then e - 1 else e in
    if i < 0 then 0 else min i (buckets t)
  end

let observe t v =
  t.counts.(index t v) <- t.counts.(index t v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v > t.max_seen then t.max_seen <- v

let count t = t.count
let sum t = t.sum
let max_seen t = t.max_seen

let merge a b =
  if a.lo <> b.lo || Array.length a.counts <> Array.length b.counts then
    invalid_arg "Loghist.merge: shape mismatch";
  let m = create ~lo:a.lo ~buckets:(buckets a) () in
  Array.iteri (fun i c -> m.counts.(i) <- c + b.counts.(i)) a.counts;
  m.count <- a.count + b.count;
  m.sum <- a.sum +. b.sum;
  m.max_seen <- Float.max a.max_seen b.max_seen;
  m

let quantile t q =
  if t.count = 0 then 0.0
  else begin
    let target = max 1 (int_of_float (Float.ceil (q *. float_of_int t.count))) in
    let n = buckets t in
    let rec walk i cum =
      if i >= n then t.max_seen
      else
        let cum = cum + t.counts.(i) in
        if cum >= target then Float.min (t.lo *. (2.0 ** float_of_int i)) t.max_seen
        else walk (i + 1) cum
    in
    walk 0 0
  end

let bucket_counts t =
  let n = buckets t in
  Array.init (n + 1) (fun i ->
      if i = n then (infinity, t.counts.(n)) else (t.lo *. (2.0 ** float_of_int i), t.counts.(i)))
