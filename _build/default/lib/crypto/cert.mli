(** X.509-style certificates, chains and trust stores.

    A certificate binds a subject name to an RSA public key, signed by an
    issuer.  This underpins the paper's trust relationships: PEPs hold
    trusted public-key certificates of capability/decision services
    (Fig. 2/3) and validate what those services sign. *)

type t = {
  serial : int;
  subject : string;  (** e.g. ["cn=pdp,o=domain-a"] *)
  issuer : string;
  public_key : Rsa.public_key;
  not_before : float;
  not_after : float;
  signature : string;  (** issuer signature over the canonical TBS form *)
}

val to_xml : t -> Dacs_xml.Xml.t
val of_xml : Dacs_xml.Xml.t -> t option

val tbs_string : t -> string
(** Canonical "to-be-signed" serialisation (everything but the signature). *)

val fingerprint : t -> string
(** Hex SHA-256 over the full canonical certificate. *)

val self_signed :
  Rsa.keypair -> subject:string -> serial:int -> not_before:float -> not_after:float -> t
(** A root (CA) certificate: issuer = subject, signed by its own key. *)

val issue :
  ca_key:Rsa.private_key ->
  ca_cert:t ->
  subject:string ->
  public_key:Rsa.public_key ->
  serial:int ->
  not_before:float ->
  not_after:float ->
  t
(** A certificate for [subject]'s key, signed by the CA. *)

val verify_signature : t -> issuer_key:Rsa.public_key -> bool

val valid_at : t -> float -> bool
(** Within the [not_before, not_after] window. *)

(** {1 Trust stores} *)

module Trust_store : sig
  type cert = t
  type t

  val empty : t
  val add : t -> cert -> t
  (** Add a trusted root. *)

  val mem : t -> cert -> bool
  val roots : t -> cert list

  type failure =
    | Empty_chain
    | Expired of string  (** subject of the expired certificate *)
    | Bad_signature of string
    | Untrusted_root of string
    | Broken_chain of string * string  (** issuer/subject mismatch *)

  val failure_to_string : failure -> string

  val verify_chain : t -> now:float -> cert list -> (unit, failure) result
  (** [verify_chain store ~now chain] checks a leaf-to-root chain: each
      certificate is within validity, signed by the next one's key, and the
      final certificate is a self-signed member of the store. *)
end
