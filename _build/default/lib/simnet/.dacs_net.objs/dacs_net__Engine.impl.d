lib/simnet/engine.ml: Array Dacs_crypto
