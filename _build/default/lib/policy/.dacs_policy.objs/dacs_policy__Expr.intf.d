lib/policy/expr.mli: Context Format Value
