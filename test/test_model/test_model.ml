(* Stateful model-based testing of the cache hierarchy.

   The system under test is the full serving stack: a sharded PEP (L1
   decision cache + single-flight) over two PDP shards (each with a
   PIP-fed attribute cache) and a domain L2 decision cache.  A reference
   model is a flat pair (current policy, subject -> role): evaluating
   the model is one in-process Policy.evaluate with the role inlined.

   QCheck generates random interleavings of the operations that mutate
   shared state — decisions, policy publishes (with their invalidation
   round), spurious invalidations, attribute revocations and grants, and
   shard crash/recovery — and the property asserts that every decision
   the stack returns equals the model's answer at that instant.  Caches,
   coalescing, batching, failover and invalidation propagation must all
   be decision-invariant: no stale decision may outlive the invalidation
   round that should have killed it.

   The one relaxation: while BOTH shards are crashed an answer may also
   be Indeterminate (the stack fails closed rather than inventing an
   answer).  A decision issued concurrently with a publish may match the
   model before or after the publish — either order is a correct
   linearisation — but nothing else.

   Operations are int-coded triples so QCheck shrinks a failing
   interleaving to a minimal one. *)

module Policy = Dacs_policy.Policy
module Rule = Dacs_policy.Rule
module Expr = Dacs_policy.Expr
module Target = Dacs_policy.Target
module Combine = Dacs_policy.Combine
module Context = Dacs_policy.Context
module Decision = Dacs_policy.Decision
module Value = Dacs_policy.Value
module Delta = Dacs_policy.Delta
module Net = Dacs_net.Net
module Service = Dacs_ws.Service
open Dacs_core

let roles = [| "doctor"; "nurse"; "admin" |]
let actions = [| "read"; "write" |]
let users = 4
let user_name u = Printf.sprintf "user%d" (u mod users)

(* A small closed policy family: index k permits role k outright and
   role k+1 for reads, then denies.  First_applicable keeps evaluation
   order-sensitive (cache staleness shows up as a flipped decision, not
   just a different message). *)
let policy_family k =
  let k = abs k mod 4 in
  let role i = roles.(i mod Array.length roles) in
  Policy.make ~id:(Printf.sprintf "model-p%d" k) ~rule_combining:Combine.First_applicable
    [
      Rule.permit ~condition:(Expr.one_of (Expr.subject_attr "role") [ role k ]) "full-access";
      Rule.permit
        ~target:Target.(any |> action_is "action-id" "read")
        ~condition:(Expr.one_of (Expr.subject_attr "role") [ role (k + 1) ])
        "read-only";
      Rule.deny "default-deny";
    ]

(* Extended family for targeted publishes: bit 2 appends a rule confined
   to resource "lab", which no model request ever names.  The delta
   region of a publish toggling only that rule must exclude every chart
   context, so a targeted invalidation round drops nothing — and the
   retained cached decisions must still match the model. *)
let policy_family_ext k =
  let k = abs k in
  let base = policy_family k in
  if k land 4 = 0 then base
  else begin
    let lab = Rule.permit ~target:Target.(any |> resource_is "resource-id" "lab") "lab-bonus" in
    let rec splice = function
      | [ deny ] -> [ lab; deny ]
      | r :: rest -> r :: splice rest
      | [] -> [ lab ]
    in
    { base with Policy.rules = splice base.Policy.rules }
  end

(* --- the reference model ------------------------------------------------ *)

type model = {
  mutable policy : int;
  role_of : string option array;  (* per user; None = revoked *)
  crashed : bool array;  (* per shard *)
}

let model_ctx m u action =
  let subject =
    ("subject-id", Value.String (user_name u))
    :: (match m.role_of.(u mod users) with None -> [] | Some r -> [ ("role", Value.String r) ])
  in
  Context.make ~subject
    ~resource:[ ("resource-id", Value.String "chart") ]
    ~action:[ ("action-id", Value.String actions.(action mod Array.length actions)) ]
    ()

let model_decision m u action = (Policy.evaluate (model_ctx m u action) (policy_family m.policy)).Decision.decision

(* --- the system under test --------------------------------------------- *)

type sut = {
  net : Net.t;
  pep : Pep.t;
  shards : Pdp_service.t array;
  l2 : Cache_hierarchy.L2.t;
  pip : Pip.t;
}

let shard_node i = Printf.sprintf "pdp%d" i

let make_sut () =
  let net = Net.create ~seed:31L () in
  let services = Service.create (Dacs_net.Rpc.create net) in
  let add id =
    Net.add_node net id;
    id
  in
  let pip = Pip.create services ~node:(add "pip") ~name:"pip" in
  for u = 0 to users - 1 do
    Pip.add_subject_attribute pip ~subject:(user_name u) ~id:"role"
      (Value.String roles.(u mod Array.length roles))
  done;
  let shards =
    Array.init 2 (fun i ->
        Pdp_service.create services ~node:(add (shard_node i)) ~name:(shard_node i)
          ~root:(Policy.Inline_policy (policy_family 0))
          ~pips:[ "pip" ] ~attr_cache_ttl:600.0 ())
  in
  let l2 = Cache_hierarchy.L2.create services ~node:(add "l2") ~ttl:600.0 () in
  let tier =
    Pdp_tier.create services ~node:(add "pep") ~shards:[ shard_node 0; shard_node 1 ] ()
  in
  let pep =
    Pep.create services ~node:"pep" ~domain:"d" ~resource:"chart"
      (Pep.Sharded { tier; cache = Some (Decision_cache.create ~ttl:600.0 ()) })
  in
  Pep.set_l2 pep (Some (Cache_hierarchy.L2.node l2));
  (* Deliver the shards' attribute-subscribe handshakes. *)
  Net.run net;
  { net; pep; shards; l2; pip }

(* The invalidation round a publish or attribute change triggers: purge
   the shared L2 and every PEP L1, then let the pushes propagate. *)
let invalidation_round sut =
  Cache_hierarchy.L2.invalidate_all sut.l2;
  Pep.invalidate_cache sut.pep;
  Net.run sut.net

(* The request the PEP actually sees withholds the role — the shard must
   resolve it at the PIP (through its attribute cache), which is exactly
   the path revocation staleness would poison. *)
let sut_ctx u action =
  Context.make
    ~subject:[ ("subject-id", Value.String (user_name u)) ]
    ~resource:[ ("resource-id", Value.String "chart") ]
    ~action:[ ("action-id", Value.String actions.(action mod Array.length actions)) ]
    ()

let show = Decision.decision_to_string

(* --- operations --------------------------------------------------------- *)

type op =
  | Decide of int * int
  | Decide_pair of int * int  (* two identical queries: the coalescing path *)
  | Publish of int
  | Publish_delta of int  (* targeted invalidation from the change-impact region *)
  | Spurious_invalidate
  | Revoke of int
  | Grant of int * int
  | Crash of int
  | Recover of int
  | Decide_during_publish of int * int * int

let op_of_code (code, u, x) =
  match code mod 10 with
  | 0 -> Decide (u, x)
  | 1 -> Decide_pair (u, x)
  | 2 -> Publish x
  | 3 -> Spurious_invalidate
  | 4 -> Revoke u
  | 5 -> Grant (u, x)
  | 6 -> Crash (x mod 2)
  | 7 -> Recover (x mod 2)
  | 8 -> Publish_delta (u + x)
  | _ -> Decide_during_publish (u, x, u + x)

let show_op = function
  | Decide (u, a) -> Printf.sprintf "decide(%s,%s)" (user_name u) actions.(a mod 2)
  | Decide_pair (u, a) -> Printf.sprintf "decide-pair(%s,%s)" (user_name u) actions.(a mod 2)
  | Publish p -> Printf.sprintf "publish(p%d)" (abs p mod 4)
  | Publish_delta p -> Printf.sprintf "publish-delta(p%d)" (abs p mod 8)
  | Spurious_invalidate -> "invalidate"
  | Revoke u -> Printf.sprintf "revoke(%s)" (user_name u)
  | Grant (u, r) -> Printf.sprintf "grant(%s,%s)" (user_name u) roles.(r mod 3)
  | Crash i -> Printf.sprintf "crash(pdp%d)" i
  | Recover i -> Printf.sprintf "recover(pdp%d)" i
  | Decide_during_publish (u, a, p) ->
    Printf.sprintf "decide(%s,%s)||publish(p%d)" (user_name u) actions.(a mod 2) (abs p mod 4)

(* --- execution ---------------------------------------------------------- *)

let publish sut m p =
  let p = abs p mod 4 in
  Array.iter (fun shard -> Pdp_service.install_policy shard (Policy.Inline_policy (policy_family p))) sut.shards;
  m.policy <- p;
  invalidation_round sut

(* The targeted round: instead of flushing L2 and the PEP's L1, drop
   only the entries inside the publish's change-impact region.  The
   model is updated exactly as for [publish] — soundness of the region
   is precisely the claim that retained entries still match it. *)
let publish_delta sut m p =
  let p = abs p mod 8 in
  let before = Policy.Inline_policy (policy_family_ext m.policy) in
  let after = Policy.Inline_policy (policy_family_ext p) in
  let region = Delta.between (Some before) (Some after) in
  Array.iter (fun shard -> Pdp_service.install_policy shard after) sut.shards;
  m.policy <- p;
  Cache_hierarchy.L2.invalidate_region sut.l2 region;
  ignore (Pep.invalidate_region sut.pep region);
  Net.run sut.net

let clear_attr_cache shard =
  match Pdp_service.attr_cache shard with
  | Some ac -> Cache_hierarchy.Attr_cache.clear ac
  | None -> ()

let check_decision m trace ~stage u a answer =
  let expected = model_decision m u a in
  let fail_closed_ok = m.crashed.(0) && m.crashed.(1) in
  match answer with
  | None -> QCheck.Test.fail_reportf "[%s] %s: no answer\ntrace: %s" stage (user_name u) trace
  | Some r -> (
    match r.Decision.decision with
    | d when Decision.equal_decision d expected -> ()
    | Decision.Indeterminate _ when fail_closed_ok -> ()
    | d ->
      QCheck.Test.fail_reportf "[%s] %s/%s: got %s, model says %s (policy p%d, role %s)\ntrace: %s"
        stage (user_name u)
        actions.(a mod Array.length actions)
        (show d) (show expected) m.policy
        (match m.role_of.(u mod users) with None -> "-" | Some r -> r)
        trace)

let run_op sut m trace op =
  match op with
  | Decide (u, a) ->
    let answer = ref None in
    Pep.decide sut.pep (sut_ctx u a) (fun r -> answer := Some r);
    Net.run sut.net;
    check_decision m trace ~stage:"decide" u a !answer
  | Decide_pair (u, a) ->
    let first = ref None and second = ref None in
    Pep.decide sut.pep (sut_ctx u a) (fun r -> first := Some r);
    Pep.decide sut.pep (sut_ctx u a) (fun r -> second := Some r);
    Net.run sut.net;
    check_decision m trace ~stage:"pair-leader" u a !first;
    check_decision m trace ~stage:"pair-waiter" u a !second
  | Publish p -> publish sut m p
  | Publish_delta p -> publish_delta sut m p
  | Spurious_invalidate -> invalidation_round sut
  | Revoke u ->
    Pip.remove_subject_attribute sut.pip ~subject:(user_name u) ~id:"role";
    m.role_of.(u mod users) <- None;
    invalidation_round sut
  | Grant (u, r) ->
    let role = roles.(r mod Array.length roles) in
    (* remove first so subscribed attribute caches are push-purged; the
       new value is then picked up on the next miss. *)
    Pip.remove_subject_attribute sut.pip ~subject:(user_name u) ~id:"role";
    Pip.add_subject_attribute sut.pip ~subject:(user_name u) ~id:"role" (Value.String role);
    m.role_of.(u mod users) <- Some role;
    invalidation_round sut
  | Crash i ->
    if not m.crashed.(i) then begin
      Net.crash sut.net (shard_node i);
      m.crashed.(i) <- true
    end
  | Recover i ->
    if m.crashed.(i) then begin
      Net.recover sut.net (shard_node i);
      (* The shard was deaf while down: any attribute-invalidate push it
         missed is gone for good, so a rejoining shard flushes its
         attribute cache (the lost-push repair). *)
      clear_attr_cache sut.shards.(i);
      m.crashed.(i) <- false
    end
  | Decide_during_publish (u, a, p) ->
    (* The decision is in flight while the publish + invalidation round
       land: it may observe the old policy or the new one, nothing else. *)
    let before = model_decision m u a in
    let answer = ref None in
    Pep.decide sut.pep (sut_ctx u a) (fun r -> answer := Some r);
    publish sut m p;
    Net.run sut.net;
    let after = model_decision m u a in
    let fail_closed_ok = m.crashed.(0) && m.crashed.(1) in
    (match !answer with
    | None -> QCheck.Test.fail_reportf "[during-publish] no answer\ntrace: %s" trace
    | Some r -> (
      match r.Decision.decision with
      | d when Decision.equal_decision d before || Decision.equal_decision d after -> ()
      | Decision.Indeterminate _ when fail_closed_ok -> ()
      | d ->
        QCheck.Test.fail_reportf
          "[during-publish] %s: got %s, model allows %s (old) or %s (new)\ntrace: %s" (user_name u)
          (show d) (show before) (show after) trace))

let run_case ops =
  let sut = make_sut () in
  let m = { policy = 0; role_of = Array.init users (fun u -> Some roles.(u mod 3)); crashed = [| false; false |] } in
  let trace = String.concat "; " (List.map show_op ops) in
  List.iter (run_op sut m trace) ops;
  (* Convergence sweep: recover everything, run one invalidation round,
     then every (user, action) must agree with the model strictly. *)
  for i = 0 to 1 do
    run_op sut m trace (Recover i)
  done;
  invalidation_round sut;
  for u = 0 to users - 1 do
    for a = 0 to Array.length actions - 1 do
      let answer = ref None in
      Pep.decide sut.pep (sut_ctx u a) (fun r -> answer := Some r);
      Net.run sut.net;
      check_decision m trace ~stage:"convergence" u a !answer
    done
  done;
  true

let arb_ops =
  let open QCheck in
  list_of_size (Gen.int_bound 14)
    (triple (int_bound 9) (int_bound (users - 1)) (int_bound 5))

let model_test =
  QCheck.Test.make ~name:"cache hierarchy == flat model under random interleavings" ~count:150
    arb_ops
    (fun coded -> run_case (List.map op_of_code coded))

(* A few directed interleavings for the regressions we most care about,
   immune to generator drift. *)
let directed name ops = Alcotest.test_case name `Quick (fun () -> ignore (run_case ops))

(* The two faces of targeted invalidation, checked down to the cache
   counters: a publish whose region excludes every chart request leaves
   the L1 entry standing (and still correct), then a publish that really
   changes the rule family kills the now-stale entry through the same
   targeted path. *)
let publish_delta_retention () =
  let sut = make_sut () in
  let m =
    { policy = 0; role_of = Array.init users (fun u -> Some roles.(u mod 3)); crashed = [| false; false |] }
  in
  let trace = "publish-delta-retention" in
  run_op sut m trace (Decide (0, 0));
  let hits_before = (Pep.stats sut.pep).Pep.cache_hits in
  (* p0 -> p4: same rule family plus the lab-only rule; the region pins
     resource-id to "lab", so the cached chart decision survives. *)
  run_op sut m trace (Publish_delta 4);
  run_op sut m trace (Decide (0, 0));
  Alcotest.(check bool) "chart entry survives an out-of-region publish" true
    ((Pep.stats sut.pep).Pep.cache_hits > hits_before);
  (* p4 -> p1: the rule family flips (doctor loses access); the region
     covers chart and the stale Permit must not outlive the round. *)
  run_op sut m trace (Publish_delta 1);
  run_op sut m trace (Decide (0, 0))

(* --- partition -> diverge -> heal -> converge ---------------------------- *)

(* Stateful model test of the offline replication layer (Offline).  The
   SUT is a mesh of three signed-log replicas; the reference is a flat
   record of every event ever appended anywhere, plus a per-replica
   knowledge matrix (highest seq known per author) maintained
   independently of the SUT's frontiers.

   QCheck generates random partition schedules interleaved with
   grants/revokes/publishes/offline decisions.  Two properties are
   asserted continuously:

   - every offline decision a replica serves mid-partition equals the
     deny-wins evaluation over exactly the events that replica knows;
   - after every heal (full-mesh anti-entropy round), all replicas reach
     byte-identical state digests and their post-replay decisions equal
     the deny-wins flat reference over the global event set.

   Deny-wins: a grant survives only if its frontier covers every known
   revocation of the same (subject, attr); the reference recomputes this
   from its own frontiers, so a SUT replay bug cannot hide. *)

module O = Offline

let rnames = [| "alpha"; "beta"; "gamma" |]
let nrep = Array.length rnames

type ref_kind = G of int * int (* user, role *) | R of int | P of int | D

type ref_event = {
  e_author : int;
  e_seq : int;
  e_at : float;
  e_frontier : (int * int) list;
  e_kind : ref_kind;
}

type osut = {
  reps : O.t array;
  clock : float ref;
  mutable step : int;
  known : int array array;  (* known.(i).(j) = highest seq of author j at replica i *)
  mutable evs : ref_event list;  (* every event appended anywhere, newest first *)
  groups : int array;  (* partition component per replica; equal = connected *)
}

let make_osut () =
  let clock = ref 0.0 in
  let key = Dacs_crypto.Sha256.digest "model-mesh-key" in
  {
    reps = Array.init nrep (fun i -> O.create ~now:(fun () -> !clock) ~key ~author:rnames.(i) ());
    clock;
    step = 0;
    known = Array.make_matrix nrep nrep 0;
    evs = [];
    groups = Array.make nrep 0;
  }

(* Two consecutive steps share a timestamp, so the (author, seq)
   tie-break of the total order is exercised, not just [at]. *)
let tick s =
  s.step <- s.step + 1;
  s.clock := float_of_int (s.step / 2)

let ref_append s i kind =
  s.known.(i).(i) <- s.known.(i).(i) + 1;
  let frontier =
    Array.to_list (Array.mapi (fun j n -> (j, n)) s.known.(i))
    |> List.filter (fun (_, n) -> n > 0)
  in
  s.evs <-
    { e_author = i; e_seq = s.known.(i).(i); e_at = !(s.clock); e_frontier = frontier; e_kind = kind }
    :: s.evs

let ref_covers frontier author seq = List.exists (fun (a, n) -> a = author && n >= seq) frontier

(* Deny-wins evaluation over the events replica [i] knows: role per user
   from the latest surviving grant, policy from the latest publish, both
   in the total order (at, author, seq). *)
let ref_state s i =
  let known =
    List.filter (fun e -> s.known.(i).(e.e_author) >= e.e_seq) s.evs
    |> List.sort (fun a b -> compare (a.e_at, a.e_author, a.e_seq) (b.e_at, b.e_author, b.e_seq))
  in
  let role_of u =
    let revokes = List.filter (fun e -> e.e_kind = R u) known in
    let survivors =
      List.filter
        (fun e ->
          match e.e_kind with
          | G (u', _) ->
            u' = u && List.for_all (fun r -> ref_covers e.e_frontier r.e_author r.e_seq) revokes
          | _ -> false)
        known
    in
    match List.rev survivors with
    | { e_kind = G (_, r); _ } :: _ -> Some (r mod Array.length roles)
    | _ -> None
  in
  let policy = List.fold_left (fun acc e -> match e.e_kind with P p -> Some p | _ -> acc) None known in
  (role_of, policy)

let off_ctx u a =
  Context.make
    ~subject:[ ("subject-id", Value.String (user_name u)) ]
    ~resource:[ ("resource-id", Value.String "chart") ]
    ~action:[ ("action-id", Value.String actions.(a mod Array.length actions)) ]
    ()

let ref_decide s i u a =
  let role_of, policy = ref_state s i in
  match policy with
  | None -> None
  | Some p ->
    let subject =
      ("subject-id", Value.String (user_name u))
      :: (match role_of (u mod users) with None -> [] | Some r -> [ ("role", Value.String roles.(r)) ])
    in
    let ctx =
      Context.make ~subject
        ~resource:[ ("resource-id", Value.String "chart") ]
        ~action:[ ("action-id", Value.String actions.(a mod Array.length actions)) ]
        ()
    in
    Some (Policy.evaluate ctx (policy_family p)).Decision.decision

let check_offline_decision s trace ~stage i u a =
  let expected = ref_decide s i u a in
  let got = O.decide s.reps.(i) (off_ctx u a) in
  (match got with Some _ -> ref_append s i D | None -> ());
  match (got, expected) with
  | None, None -> ()
  | Some (r, _), Some d when Decision.equal_decision r.Decision.decision d -> ()
  | _ ->
    QCheck.Test.fail_reportf "[%s] %s: %s/%s got %s, deny-wins reference says %s\ntrace: %s" stage
      rnames.(i) (user_name u)
      actions.(a mod Array.length actions)
      (match got with None -> "none" | Some (r, _) -> show r.Decision.decision)
      (match expected with None -> "none" | Some d -> show d)
      trace

(* One anti-entropy round: every replica pulls the suffix it lacks from
   every connected peer.  The reference knowledge matrix is updated per
   pair in the same order, so mid-round cascades match exactly. *)
let sync_round s trace =
  for i = 0 to nrep - 1 do
    for j = 0 to nrep - 1 do
      if i <> j && s.groups.(i) = s.groups.(j) then begin
        (match O.admit s.reps.(i) (O.missing_for s.reps.(j) ~frontier:(O.frontier s.reps.(i))) with
        | Ok _ -> ()
        | Error e ->
          QCheck.Test.fail_reportf "sync %s<-%s rejected honest segment: %s\ntrace: %s" rnames.(i)
            rnames.(j) (O.sync_error_to_string e) trace);
        for a = 0 to nrep - 1 do
          if s.known.(j).(a) > s.known.(i).(a) then s.known.(i).(a) <- s.known.(j).(a)
        done
      end
    done
  done

let heal s trace =
  Array.fill s.groups 0 nrep 0;
  sync_round s trace;
  let d0 = O.state_digest s.reps.(0) in
  Array.iteri
    (fun i o ->
      if O.state_digest o <> d0 then
        QCheck.Test.fail_reportf "post-heal digest divergence: %s != alpha\ntrace: %s" rnames.(i)
          trace)
    s.reps

type oop =
  | OGrant of int * int * int  (* replica, user, role *)
  | ORevoke of int * int
  | OPublish of int * int
  | ODecide of int * int * int  (* replica, user, action *)
  | OPartition of int  (* 3-bit mask: bit i picks replica i's side *)
  | OSync
  | OHeal

let oop_of_code (code, u, x) =
  match code mod 10 with
  | 0 | 1 | 2 -> ODecide (x mod nrep, u, x)
  | 3 | 4 -> OGrant (x mod nrep, u, x)
  | 5 -> ORevoke (x mod nrep, u)
  | 6 -> OPublish (x mod nrep, x)
  | 7 -> OPartition x
  | 8 -> OSync
  | _ -> OHeal

let show_oop = function
  | OGrant (i, u, r) ->
    Printf.sprintf "grant@%s(%s,%s)" rnames.(i) (user_name u) roles.(r mod Array.length roles)
  | ORevoke (i, u) -> Printf.sprintf "revoke@%s(%s)" rnames.(i) (user_name u)
  | OPublish (i, p) -> Printf.sprintf "publish@%s(p%d)" rnames.(i) (abs p mod 4)
  | ODecide (i, u, a) ->
    Printf.sprintf "decide@%s(%s,%s)" rnames.(i) (user_name u) actions.(a mod 2)
  | OPartition m -> Printf.sprintf "partition(%d%d%d)" (m land 1) ((m lsr 1) land 1) ((m lsr 2) land 1)
  | OSync -> "sync"
  | OHeal -> "heal"

let run_oop s trace op =
  tick s;
  match op with
  | OGrant (i, u, r) ->
    O.grant s.reps.(i) ~subject:(user_name u) ~attr:"role" ~value:roles.(r mod Array.length roles);
    ref_append s i (G (u mod users, r mod Array.length roles))
  | ORevoke (i, u) ->
    O.revoke s.reps.(i) ~subject:(user_name u) ~attr:"role";
    ref_append s i (R (u mod users))
  | OPublish (i, p) ->
    let p = abs p mod 4 in
    O.publish s.reps.(i) (Policy.Inline_policy (policy_family p));
    ref_append s i (P p)
  | ODecide (i, u, a) -> check_offline_decision s trace ~stage:"offline-decide" i u a
  | OPartition m ->
    for i = 0 to nrep - 1 do
      s.groups.(i) <- (m lsr i) land 1
    done
  | OSync -> sync_round s trace
  | OHeal -> heal s trace

(* Seed every case with a policy and a role per user (all via alpha),
   fully synced, so partitions diverge from a meaningful baseline. *)
let seed_osut s trace =
  tick s;
  O.publish s.reps.(0) (Policy.Inline_policy (policy_family 0));
  ref_append s 0 (P 0);
  for u = 0 to users - 1 do
    tick s;
    O.grant s.reps.(0) ~subject:(user_name u) ~attr:"role"
      ~value:roles.(u mod Array.length roles);
    ref_append s 0 (G (u, u mod Array.length roles))
  done;
  heal s trace

let run_ocase ops =
  let s = make_osut () in
  let trace = String.concat "; " (List.map show_oop ops) in
  seed_osut s trace;
  List.iter (run_oop s trace) ops;
  (* Final heal: byte-identical digests, then every replica's post-replay
     decisions must equal the deny-wins flat reference. *)
  run_oop s trace OHeal;
  for i = 0 to nrep - 1 do
    for u = 0 to users - 1 do
      for a = 0 to Array.length actions - 1 do
        tick s;
        check_offline_decision s trace ~stage:"converged" i u a
      done
    done
  done;
  true

let arb_oops =
  let open QCheck in
  list_of_size (Gen.int_bound 16) (triple (int_bound 9) (int_bound (users - 1)) (int_bound 7))

let convergence_test =
  QCheck.Test.make ~name:"offline replicas converge to deny-wins flat reference" ~count:500
    arb_oops
    (fun coded -> run_ocase (List.map oop_of_code coded))

let directed_offline name ops = Alcotest.test_case name `Quick (fun () -> ignore (run_ocase ops))

(* The canonical deny-wins race, checked down to the artifacts: a grant
   made offline concurrently with a revocation elsewhere is defeated on
   heal, the race is surfaced as a conflict record, and the offline
   Permit decided from the doomed grant is retroactively invalidated
   (hook fired exactly once per decide, even across a second heal). *)
let offline_conflict_artifacts () =
  let s = make_osut () in
  let trace = "conflict-artifacts" in
  seed_osut s trace;
  let fired = ref [] in
  O.on_invalidate s.reps.(0) (fun k -> fired := k :: !fired);
  List.iter (run_oop s trace)
    [
      OPartition 1;
      (* alpha alone *)
      ORevoke (1, 0);
      (* beta revokes user0 (doctor) *)
      ODecide (0, 0, 0);
      (* alpha, unaware, still permits user0: logged offline *)
      OGrant (0, 2, 0);
      (* alpha grants user2 doctor ... *)
      ORevoke (1, 2);
      (* ... concurrently with beta's revoke: the deny-wins race *)
      OHeal;
    ];
  let stats = O.stats s.reps.(0) in
  Alcotest.(check bool) "offline permit retroactively invalidated" true (stats.O.invalidations >= 1);
  Alcotest.(check bool) "invalidation hook fired" true (!fired <> []);
  let conflicts = O.conflicts s.reps.(0) in
  Alcotest.(check bool) "concurrent grant||revoke surfaced as conflict" true
    (List.exists (fun c -> c.O.c_subject = user_name 2) conflicts);
  Array.iter
    (fun o -> Alcotest.(check int) "same conflicts everywhere" (List.length conflicts) (List.length (O.conflicts o)))
    s.reps;
  let fired_before = List.length !fired in
  run_oop s trace OHeal;
  Alcotest.(check int) "second heal does not refire invalidations" fired_before
    (List.length !fired)

let () =
  Alcotest.run "dacs_model"
    [
      ( "model-based",
        [
          QCheck_alcotest.to_alcotest model_test;
          directed "revocation kills cached grant"
            [ Decide (0, 0); Revoke 0; Decide (0, 0) ];
          directed "publish flips cached decision"
            [ Decide (1, 0); Publish 1; Decide (1, 0); Publish 2; Decide (1, 0) ];
          directed "grant after revoke"
            [ Revoke 2; Decide (2, 0); Grant (2, 0); Decide (2, 0) ];
          directed "crashed shard misses the push, repaired on rejoin"
            [ Decide (0, 0); Crash 1; Revoke 0; Decide (0, 0); Recover 1; Decide (0, 0) ];
          directed "both shards down fails closed"
            [ Crash 0; Crash 1; Decide (3, 1); Recover 0; Decide (3, 1) ];
          directed "coalesced pair across a publish"
            [ Decide_pair (1, 0); Publish 3; Decide_pair (1, 0) ];
          directed "decide racing a publish"
            [ Decide (0, 1); Decide_during_publish (0, 1, 1); Decide (0, 1) ];
          directed "targeted publish flips cached decision"
            [ Decide (1, 0); Publish_delta 1; Decide (1, 0); Publish_delta 2; Decide (1, 0) ];
          directed "targeted publish interleaved with crash and revocation"
            [
              Decide (0, 0); Crash 1; Publish_delta 3; Decide (0, 0); Revoke 0;
              Decide (0, 0); Recover 1; Publish_delta 4; Decide (0, 0);
            ];
          Alcotest.test_case "out-of-region publish retains the cache" `Quick
            publish_delta_retention;
        ] );
      ( "offline-convergence",
        [
          QCheck_alcotest.to_alcotest convergence_test;
          directed_offline "revoke during partition defeats offline grant"
            [
              OPartition 1;
              OGrant (0, 0, 2);
              ORevoke (1, 0);
              ODecide (0, 0, 0);
              ODecide (1, 0, 0);
              OHeal;
              ODecide (0, 0, 0);
            ];
          directed_offline "double heal is idempotent"
            [ OPartition 1; OGrant (0, 1, 0); ORevoke (2, 1); OHeal; OHeal; ODecide (2, 1, 0) ];
          directed_offline "grant then offline revoke race"
            [
              OPartition 1;
              ORevoke (0, 1);
              OGrant (1, 1, 0);
              ODecide (1, 1, 0);
              OHeal;
              ODecide (0, 1, 0);
              ODecide (1, 1, 0);
            ];
          directed_offline "publish races across partition: last in total order wins"
            [ OPartition 1; OPublish (0, 1); OPublish (1, 2); OHeal; ODecide (2, 0, 0) ];
          directed_offline "sync inside a component does not leak across the cut"
            [ OPartition 1; OGrant (1, 3, 1); OSync; ODecide (0, 3, 0); OHeal ];
          Alcotest.test_case "conflict + retroactive invalidation artifacts" `Quick
            offline_conflict_artifacts;
        ] );
    ]
