lib/core/wire.mli: Dacs_crypto Dacs_policy Dacs_xml
