(** Obligations: actions a PEP must perform when enforcing a decision.

    Obligations attach to policies and policy sets; a decision carries up
    the obligations whose [fulfill_on] effect matches the final decision
    (§2.3 of the paper — e.g. "encrypt the resource before provisioning",
    "write an audit record"). *)

type effect = Permit | Deny

type t = {
  id : string;  (** e.g. ["urn:dacs:obligation:audit"] *)
  fulfill_on : effect;
  parameters : (string * Value.t) list;
}

val make : ?parameters:(string * Value.t) list -> fulfill_on:effect -> string -> t

val applicable : t list -> effect -> t list
(** Obligations to hand to the PEP for a decision with the given effect. *)

val audit : t
(** Stock audit obligation ([fulfill_on = Permit]). *)

val encrypt_response : strength:int -> t
(** Stock content-protection obligation, parameterised by key strength. *)

val content_filter : forbidden:string -> t
(** Content-based access control (§3.1): the PEP must inspect the
    resource representation before provisioning it and refuse if it
    contains the forbidden marker — the paper's example of obligations
    standing in for content checks that cannot be decided statically. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
