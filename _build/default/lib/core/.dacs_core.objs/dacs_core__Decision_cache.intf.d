lib/core/decision_cache.mli: Dacs_policy
