lib/wskit/security.ml: Dacs_crypto Dacs_xml List Option Printf Soap
