lib/rbac/rbac.ml: Format List Map Option Printf Set String
