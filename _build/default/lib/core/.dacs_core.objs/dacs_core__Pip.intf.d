lib/core/pip.mli: Dacs_net Dacs_policy Dacs_ws
