(** RBAC sessions: per-interaction role activation with dynamic
    separation of duty.

    A user activates a subset of their authorised roles; DSD constraints
    bound which roles may be active {e simultaneously} — the runtime
    counterpart of the static checks in {!Rbac}. *)

type t

val create : Rbac.t -> Rbac.user -> t
(** A session with no active roles. *)

val user : t -> Rbac.user
val active_roles : t -> Rbac.role list

val activate : Rbac.t -> t -> Rbac.role -> (t, string) result
(** Fails when the user is not authorised for the role or activation
    would violate a DSD constraint (inherited roles count as active). *)

val deactivate : t -> Rbac.role -> t

val permissions : Rbac.t -> t -> Rbac.permission list
(** Permissions of the active roles only. *)

val check_access : Rbac.t -> t -> action:string -> resource:string -> bool
