lib/policy/pdp.mli: Context Decision Policy Value
