lib/simnet/sequence.ml: Buffer Bytes List Net Option Printf String
