lib/rbac/compile.ml: Combine Dacs_policy Expr List Policy Printf Rbac Rule Target Value
