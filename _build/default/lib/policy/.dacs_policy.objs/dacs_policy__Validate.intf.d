lib/policy/validate.mli: Policy
