lib/policy/pdp.ml: Context Decision Option Policy Value
