type error =
  | Timeout
  | No_such_service of string
  | Circuit_open of Net.node_id

let error_to_string = function
  | Timeout -> "timeout"
  | No_such_service s -> Printf.sprintf "no such service: %s" s
  | Circuit_open n -> Printf.sprintf "circuit open towards %s" n

(* --- resilience configuration ------------------------------------------- *)

type retry_policy = {
  attempts : int;
  base_delay : float;
  multiplier : float;
  max_delay : float;
  jitter : float;
}

let no_retry = { attempts = 1; base_delay = 0.0; multiplier = 1.0; max_delay = 0.0; jitter = 0.0 }

let default_retry =
  { attempts = 3; base_delay = 0.05; multiplier = 2.0; max_delay = 2.0; jitter = 0.2 }

type breaker_config = { failure_threshold : int; cooldown : float }

let default_breaker = { failure_threshold = 5; cooldown = 2.0 }

type breaker_state = Closed | Open | Half_open

let breaker_state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type breaker = {
  mutable b_state : breaker_state;
  mutable consecutive_failures : int;
  mutable opened_at : float;
  mutable probe_in_flight : bool;
}

type resilience_event =
  | Attempt_failed of { target : Net.node_id; attempt : int; error : error }
  | Retrying of { target : Net.node_id; attempt : int; delay : float }
  | Breaker_opened of Net.node_id
  | Breaker_half_opened of Net.node_id
  | Breaker_closed of Net.node_id
  | Breaker_rejected of Net.node_id

type resilience_stats = { retries : int; breaker_trips : int; breaker_rejections : int }

type pending = { k : (string, error) result -> unit }

type t = {
  net : Net.t;
  services : (Net.node_id * string, caller:Net.node_id -> string -> (string -> unit) -> unit) Hashtbl.t;
  pending : (int, pending) Hashtbl.t;
  mutable next_id : int;
  mutable breaker_config : breaker_config option;
  breakers : (Net.node_id, breaker) Hashtbl.t;
  mutable retries_total : int;
  mutable trips_total : int;
  mutable rejections_total : int;
}

(* Wire format: kind '|' id '|' service '|' body.  The few header bytes
   model transport framing; the body carries the real (XML) payload whose
   size dominates.  The body is the unframed remainder and may contain
   anything; the service name is percent-escaped so that '|' (and '%')
   in a service name cannot break the framing. *)

let escape_service s =
  if String.contains s '|' || String.contains s '%' then begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (function
        | '|' -> Buffer.add_string buf "%7C"
        | '%' -> Buffer.add_string buf "%25"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end
  else s

let unescape_service s =
  if not (String.contains s '%') then s
  else begin
    let n = String.length s in
    let buf = Buffer.create n in
    let i = ref 0 in
    while !i < n do
      if s.[!i] = '%' && !i + 2 < n && s.[!i + 1] = '7' && s.[!i + 2] = 'C' then begin
        Buffer.add_char buf '|';
        i := !i + 3
      end
      else if s.[!i] = '%' && !i + 2 < n && s.[!i + 1] = '2' && s.[!i + 2] = '5' then begin
        Buffer.add_char buf '%';
        i := !i + 3
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  end

let encode_request id service body = Printf.sprintf "Q|%d|%s|%s" id (escape_service service) body
let encode_reply id body = Printf.sprintf "A|%d||%s" id body
let encode_error id msg = Printf.sprintf "E|%d||%s" id msg

type frame =
  | Request of int * string * string
  | Reply of int * string
  | Error_frame of int * string

let decode payload =
  match String.index_opt payload '|' with
  | None -> None
  | Some first -> (
    let kind = String.sub payload 0 first in
    match String.index_from_opt payload (first + 1) '|' with
    | None -> None
    | Some second -> (
      let id = int_of_string_opt (String.sub payload (first + 1) (second - first - 1)) in
      match (id, String.index_from_opt payload (second + 1) '|') with
      | Some id, Some third ->
        let service = unescape_service (String.sub payload (second + 1) (third - second - 1)) in
        let body = String.sub payload (third + 1) (String.length payload - third - 1) in
        (match kind with
        | "Q" -> Some (Request (id, service, body))
        | "A" -> Some (Reply (id, body))
        | "E" -> Some (Error_frame (id, body))
        | _ -> None)
      | _ -> None))
  [@@warning "-4"]

let handle_message t (msg : Net.message) =
  match decode msg.Net.payload with
  | None -> ()
  | Some (Request (id, service, body)) -> (
    match Hashtbl.find_opt t.services (msg.Net.dst, service) with
    | None ->
      Net.send t.net ~src:msg.Net.dst ~dst:msg.Net.src ~category:"rpc-error"
        (encode_error id ("no-such-service:" ^ service))
    | Some handler ->
      let reply body =
        Net.send t.net ~src:msg.Net.dst ~dst:msg.Net.src ~category:(msg.Net.category ^ "-reply")
          (encode_reply id body)
      in
      handler ~caller:msg.Net.src body reply)
  | Some (Reply (id, body)) -> (
    match Hashtbl.find_opt t.pending id with
    | None -> () (* reply after timeout: drop *)
    | Some p ->
      Hashtbl.remove t.pending id;
      p.k (Ok body))
  | Some (Error_frame (id, msg_body)) -> (
    match Hashtbl.find_opt t.pending id with
    | None -> ()
    | Some p ->
      Hashtbl.remove t.pending id;
      let err =
        match String.index_opt msg_body ':' with
        | Some i when String.sub msg_body 0 i = "no-such-service" ->
          No_such_service (String.sub msg_body (i + 1) (String.length msg_body - i - 1))
        | _ -> Timeout
      in
      p.k (Error err))

let create net =
  let t =
    {
      net;
      services = Hashtbl.create 64;
      pending = Hashtbl.create 64;
      next_id = 0;
      breaker_config = None;
      breakers = Hashtbl.create 16;
      retries_total = 0;
      trips_total = 0;
      rejections_total = 0;
    }
  in
  t

let net t = t.net

let ensure_dispatch t node =
  Net.add_node t.net node;
  Net.set_handler t.net node (handle_message t)

let serve t ~node ~service handler =
  ensure_dispatch t node;
  Hashtbl.replace t.services (node, service) handler

let call t ~src ~dst ~service ?(timeout = 1.0) ?category body k =
  ensure_dispatch t src;
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.pending id { k };
  let category = Option.value category ~default:service in
  Net.send t.net ~src ~dst ~category (encode_request id service body);
  Engine.schedule (Net.engine t.net) ~delay:timeout (fun () ->
      match Hashtbl.find_opt t.pending id with
      | None -> ()
      | Some p ->
        Hashtbl.remove t.pending id;
        p.k (Error Timeout))

let calls_in_flight t = Hashtbl.length t.pending

(* --- circuit breaker ------------------------------------------------------ *)

let set_breaker t config = t.breaker_config <- config

let breaker_for t dst =
  match Hashtbl.find_opt t.breakers dst with
  | Some b -> b
  | None ->
    let b =
      { b_state = Closed; consecutive_failures = 0; opened_at = neg_infinity; probe_in_flight = false }
    in
    Hashtbl.add t.breakers dst b;
    b

let breaker_state t dst =
  match (t.breaker_config, Hashtbl.find_opt t.breakers dst) with
  | None, _ | _, None -> Closed
  | Some cfg, Some b ->
    (* An open breaker past its cooldown admits a probe on the next call;
       report it as half-open so observers see the recoverable state. *)
    (match b.b_state with
    | Open when Net.now t.net >= b.opened_at +. cfg.cooldown -> Half_open
    | s -> s)

(* [true] when the attempt may be sent. *)
let breaker_admit t ~notify dst =
  match t.breaker_config with
  | None -> true
  | Some cfg -> (
    let b = breaker_for t dst in
    match b.b_state with
    | Closed -> true
    | Open ->
      if Net.now t.net >= b.opened_at +. cfg.cooldown then begin
        b.b_state <- Half_open;
        b.probe_in_flight <- true;
        notify (Breaker_half_opened dst);
        true
      end
      else begin
        t.rejections_total <- t.rejections_total + 1;
        notify (Breaker_rejected dst);
        false
      end
    | Half_open ->
      if b.probe_in_flight then begin
        t.rejections_total <- t.rejections_total + 1;
        notify (Breaker_rejected dst);
        false
      end
      else begin
        b.probe_in_flight <- true;
        true
      end)

let breaker_success t ~notify dst =
  match t.breaker_config with
  | None -> ()
  | Some _ -> (
    let b = breaker_for t dst in
    match b.b_state with
    | Half_open ->
      b.b_state <- Closed;
      b.probe_in_flight <- false;
      b.consecutive_failures <- 0;
      notify (Breaker_closed dst)
    | Closed -> b.consecutive_failures <- 0
    | Open -> () (* a straggler reply from before the trip; stay open until probed *))

let breaker_failure t ~notify dst =
  match t.breaker_config with
  | None -> ()
  | Some cfg -> (
    let b = breaker_for t dst in
    let trip () =
      b.b_state <- Open;
      b.probe_in_flight <- false;
      b.opened_at <- Net.now t.net;
      t.trips_total <- t.trips_total + 1;
      notify (Breaker_opened dst)
    in
    match b.b_state with
    | Half_open -> trip ()
    | Closed ->
      b.consecutive_failures <- b.consecutive_failures + 1;
      if b.consecutive_failures >= cfg.failure_threshold then trip ()
    | Open -> ())

(* --- resilient calls ---------------------------------------------------------- *)

let resilience_stats t =
  { retries = t.retries_total; breaker_trips = t.trips_total; breaker_rejections = t.rejections_total }

let backoff_delay t retry failures =
  let d = ref retry.base_delay in
  for _ = 2 to failures do
    d := !d *. retry.multiplier
  done;
  let d = Float.min retry.max_delay !d in
  if retry.jitter <= 0.0 then d
  else begin
    (* Deterministic jitter: drawn from the engine's seeded RNG, so a
       rerun with the same seed backs off at exactly the same instants. *)
    let u = Dacs_crypto.Rng.float (Engine.rng (Net.engine t.net)) 1.0 in
    Float.max 0.0 (d *. (1.0 +. (retry.jitter *. ((2.0 *. u) -. 1.0))))
  end

let call_resilient t ~src ~dst ~service ?timeout ?category ?(retry = no_retry) ?(notify = ignore)
    body k =
  if retry.attempts < 1 then invalid_arg "Rpc.call_resilient: attempts must be >= 1";
  let engine = Net.engine t.net in
  let rec attempt n =
    if not (breaker_admit t ~notify dst) then after_failure n (Circuit_open dst)
    else
      call t ~src ~dst ~service ?timeout ?category body (fun result ->
          match result with
          | Ok reply ->
            breaker_success t ~notify dst;
            k (Ok reply)
          | Error Timeout ->
            breaker_failure t ~notify dst;
            after_failure n Timeout
          | Error (No_such_service _ as e) ->
            (* The target answered: not a health failure, and retrying the
               same missing service cannot succeed. *)
            k (Error e)
          | Error (Circuit_open _ as e) -> after_failure n e)
  and after_failure n err =
    notify (Attempt_failed { target = dst; attempt = n; error = err });
    if n >= retry.attempts then k (Error err)
    else begin
      let delay = backoff_delay t retry n in
      t.retries_total <- t.retries_total + 1;
      notify (Retrying { target = dst; attempt = n + 1; delay });
      Engine.schedule engine ~delay (fun () -> attempt (n + 1))
    end
  in
  attempt 1
