module Xml = Dacs_xml.Xml
module Value = Dacs_policy.Value
module Context = Dacs_policy.Context

let ( let* ) = Result.bind

let attr_or_error node name =
  match Xml.attr node name with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "<%s> is missing attribute %s" (Xml.tag node) name)

let expect_tag node name =
  if Xml.local_name (Xml.tag node) = name then Ok ()
  else Error (Printf.sprintf "expected <%s>, got <%s>" name (Xml.tag node))

(* Shared encoding of attribute (name, value) lists. *)
let attr_elements attrs =
  List.map
    (fun (name, v) ->
      Xml.element "Attribute"
        ~attrs:[ ("Name", name); ("DataType", Value.type_name (Value.type_of v)) ]
        ~children:[ Xml.text (Value.to_string v) ])
    attrs

let parse_attr_elements nodes =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | node :: rest ->
      let* name = attr_or_error node "Name" in
      let* dt_name = attr_or_error node "DataType" in
      (match Value.data_type_of_name dt_name with
      | None -> Error (Printf.sprintf "unknown data type %s" dt_name)
      | Some dt ->
        let* v = Value.of_string dt (Xml.text_content node) in
        go ((name, v) :: acc) rest)
  in
  go [] nodes

(* --- access requests --------------------------------------------------- *)

let access_request ~subject ~action =
  Xml.element "AccessRequest" ~attrs:[ ("Action", action) ] ~children:(attr_elements subject)

let parse_access_request node =
  let* () = expect_tag node "AccessRequest" in
  let* action = attr_or_error node "Action" in
  let* subject = parse_attr_elements (Xml.find_children node "Attribute") in
  Ok (subject, action)

(* --- authz query/response ------------------------------------------------ *)

let authz_query ctx = Xml.element "AuthzQuery" ~children:[ Context.to_xml ctx ]

let parse_authz_query node =
  let* () = expect_tag node "AuthzQuery" in
  match Xml.find_child node "Request" with
  | None -> Error "AuthzQuery has no Request"
  | Some r -> Context.of_xml r

let authz_response ?(epoch = 0) result =
  (* The deciding PDP's compilation epoch rides the response as an
     attribute (provenance); 0 — interpreted or unknown — is the default
     and is omitted, so pre-epoch frames stay byte-identical. *)
  let attrs = if epoch > 0 then [ ("Epoch", string_of_int epoch) ] else [] in
  Xml.element "AuthzResponse" ~attrs ~children:[ Dacs_policy.Xacml_xml.result_to_xml result ]

let authz_response_epoch node =
  let node =
    (* Accept the signed envelope too: the epoch lives on the inner
       response, covered by the signature. *)
    if Xml.local_name (Xml.tag node) = "SignedAuthzResponse" then
      Option.value (Xml.find_child node "AuthzResponse") ~default:node
    else node
  in
  match Option.bind (Xml.attr node "Epoch") int_of_string_opt with
  | Some e when e > 0 -> e
  | Some _ | None -> 0

let parse_authz_response node =
  let* () = expect_tag node "AuthzResponse" in
  match Xml.find_child node "Response" with
  | None -> Error "AuthzResponse has no Response"
  | Some r -> Dacs_policy.Xacml_xml.result_of_xml r

let signed_authz_response ?epoch ~key ~cert result =
  let module Cert = Dacs_crypto.Cert in
  let response = authz_response ?epoch result in
  let signature = Dacs_crypto.Rsa.sign key (Xml.canonical_string response) in
  Xml.element "SignedAuthzResponse"
    ~children:
      [
        response;
        Cert.to_xml cert;
        Xml.element "SignatureValue"
          ~children:[ Xml.text (Dacs_crypto.Encoding.base64_encode signature) ];
      ]

let trusted_cert ~trust ~now cert =
  let module Cert = Dacs_crypto.Cert in
  if Cert.Trust_store.mem trust cert then Cert.valid_at cert now
  else begin
    match
      List.find_opt
        (fun r -> r.Cert.subject = cert.Cert.issuer)
        (Cert.Trust_store.roots trust)
    with
    | None -> false
    | Some root -> Cert.Trust_store.verify_chain trust ~now [ cert; root ] = Ok ()
  end

let verify_signed_authz_response ~trust ~now node =
  let module Cert = Dacs_crypto.Cert in
  let* () = expect_tag node "SignedAuthzResponse" in
  match
    ( Xml.find_child node "AuthzResponse",
      Option.bind (Xml.find_child node "Certificate") Cert.of_xml,
      Xml.find_child node "SignatureValue" )
  with
  | Some response, Some cert, Some sig_node ->
    let signature =
      try Some (Dacs_crypto.Encoding.base64_decode (Xml.text_content sig_node))
      with Invalid_argument _ -> None
    in
    (match signature with
    | None -> Error "signature is not valid base64"
    | Some signature ->
      if not (trusted_cert ~trust ~now cert) then
        Error (Printf.sprintf "decision signer %s is not trusted" cert.Cert.subject)
      else if
        not
          (Dacs_crypto.Rsa.verify cert.Cert.public_key (Xml.canonical_string response) ~signature)
      then Error "decision signature does not verify"
      else
        let* result = parse_authz_response response in
        Ok (result, cert))
  | _ -> Error "SignedAuthzResponse lacks response, certificate or signature"

(* --- attribute query ------------------------------------------------------- *)

let attribute_query ~category ~attribute_id ~subject =
  Xml.element "AttributeQuery"
    ~attrs:
      [
        ("Category", Context.category_name category);
        ("AttributeId", attribute_id);
        ("Subject", subject);
      ]

let parse_attribute_query node =
  let* () = expect_tag node "AttributeQuery" in
  let* category_s = attr_or_error node "Category" in
  let* attribute_id = attr_or_error node "AttributeId" in
  let* subject = attr_or_error node "Subject" in
  match Context.category_of_name category_s with
  | None -> Error (Printf.sprintf "unknown category %s" category_s)
  | Some category -> Ok (category, attribute_id, subject)

let attribute_result bag =
  Xml.element "AttributeResult" ~children:(attr_elements (List.map (fun v -> ("value", v)) bag))

let parse_attribute_result node =
  let* () = expect_tag node "AttributeResult" in
  let* pairs = parse_attr_elements (Xml.find_children node "Attribute") in
  Ok (List.map snd pairs)

let attribute_subscribe () = Xml.element "AttributeSubscribe"

let parse_attribute_subscribe node = expect_tag node "AttributeSubscribe"

let attribute_invalidate ~subject ~attribute_id =
  Xml.element "AttributeInvalidate" ~attrs:[ ("Subject", subject); ("AttributeId", attribute_id) ]

let parse_attribute_invalidate node =
  let* () = expect_tag node "AttributeInvalidate" in
  let* subject = attr_or_error node "Subject" in
  let* attribute_id = attr_or_error node "AttributeId" in
  Ok (subject, attribute_id)

(* --- shared decision cache (PEP <-> L2, L2 <-> L2) ------------------------- *)

let cache_lookup ~key = Xml.element "CacheLookup" ~attrs:[ ("Key", key) ]

let parse_cache_lookup node =
  let* () = expect_tag node "CacheLookup" in
  attr_or_error node "Key"

let cache_answer result =
  match result with
  | None -> Xml.element "CacheMiss"
  | Some r -> Xml.element "CacheHit" ~children:[ Dacs_policy.Xacml_xml.result_to_xml r ]

let parse_cache_answer node =
  match Xml.local_name (Xml.tag node) with
  | "CacheMiss" -> Ok None
  | "CacheHit" -> (
    match Xml.find_child node "Response" with
    | None -> Error "CacheHit has no Response"
    | Some r ->
      let* result = Dacs_policy.Xacml_xml.result_of_xml r in
      Ok (Some result))
  | other -> Error (Printf.sprintf "unexpected cache answer <%s>" other)

let cache_put ?sent_at ~key result =
  Xml.element "CachePut"
    ~attrs:
      (("Key", key)
      :: (match sent_at with None -> [] | Some t -> [ ("SentAt", Printf.sprintf "%.6f" t) ]))
    ~children:[ Dacs_policy.Xacml_xml.result_to_xml result ]

let parse_cache_put node =
  let* () = expect_tag node "CachePut" in
  let* key = attr_or_error node "Key" in
  let sent_at = Option.bind (Xml.attr node "SentAt") float_of_string_opt in
  match Xml.find_child node "Response" with
  | None -> Error "CachePut has no Response"
  | Some r ->
    let* result = Dacs_policy.Xacml_xml.result_of_xml r in
    Ok (key, result, sent_at)

let cache_invalidate ~epoch key =
  Xml.element "CacheInvalidate"
    ~attrs:
      (("Epoch", string_of_int epoch)
      :: (match key with None -> [] | Some k -> [ ("Key", k) ]))

let parse_cache_invalidate node =
  let* () = expect_tag node "CacheInvalidate" in
  let* epoch_s = attr_or_error node "Epoch" in
  match int_of_string_opt epoch_s with
  | None -> Error "Epoch is not an integer"
  | Some epoch -> Ok (epoch, Xml.attr node "Key")

let cache_sync ~known_epoch =
  Xml.element "CacheSync" ~attrs:[ ("KnownEpoch", string_of_int known_epoch) ]

let parse_cache_sync node =
  let* () = expect_tag node "CacheSync" in
  let* s = attr_or_error node "KnownEpoch" in
  match int_of_string_opt s with
  | Some e -> Ok e
  | None -> Error "KnownEpoch is not an integer"

(* Change-impact regions travel as structured frames so an L2 can apply
   a targeted purge pushed by its parent without seeing the policies the
   delta came from. *)

let pin_to_xml (p : Dacs_policy.Delta.pin) =
  Xml.element "Pin"
    ~attrs:
      [
        ("Category", Context.category_name p.Dacs_policy.Delta.pin_category);
        ("Attribute", p.Dacs_policy.Delta.pin_attribute);
      ]
    ~children:
      (List.map
         (fun v -> Xml.element "V" ~attrs:[ ("Value", v) ])
         p.Dacs_policy.Delta.pin_values
      @ List.map
          (fun (c, a) ->
            Xml.element "Guard"
              ~attrs:[ ("Category", Context.category_name c); ("Attribute", a) ])
          p.Dacs_policy.Delta.pin_guards)

let cache_region ~epoch region =
  let kind, children =
    match region with
    | Dacs_policy.Delta.Empty -> ("empty", [])
    | Dacs_policy.Delta.Unbounded -> ("unbounded", [])
    | Dacs_policy.Delta.Zones zs ->
      ( "zones",
        List.map (fun z -> Xml.element "Zone" ~children:(List.map pin_to_xml z)) zs )
  in
  Xml.element "CacheRegion"
    ~attrs:[ ("Epoch", string_of_int epoch); ("Kind", kind) ]
    ~children

let parse_category node name =
  let* s = attr_or_error node name in
  match Context.category_of_name s with
  | None -> Error (Printf.sprintf "unknown category %s" s)
  | Some c -> Ok c

let parse_pin node =
  let* () = expect_tag node "Pin" in
  let* category = parse_category node "Category" in
  let* attribute = attr_or_error node "Attribute" in
  let* values =
    List.fold_left
      (fun acc v ->
        let* acc = acc in
        let* value = attr_or_error v "Value" in
        Ok (value :: acc))
      (Ok [])
      (Xml.find_children node "V")
  in
  let* guards =
    List.fold_left
      (fun acc g ->
        let* acc = acc in
        let* c = parse_category g "Category" in
        let* a = attr_or_error g "Attribute" in
        Ok ((c, a) :: acc))
      (Ok [])
      (Xml.find_children node "Guard")
  in
  Ok
    {
      Dacs_policy.Delta.pin_category = category;
      pin_attribute = attribute;
      pin_values = List.rev values;
      pin_guards = List.rev guards;
    }

let parse_cache_region node =
  let* () = expect_tag node "CacheRegion" in
  let* epoch_s = attr_or_error node "Epoch" in
  let* epoch =
    match int_of_string_opt epoch_s with
    | None -> Error "Epoch is not an integer"
    | Some e -> Ok e
  in
  let* kind = attr_or_error node "Kind" in
  match kind with
  | "empty" -> Ok (epoch, Dacs_policy.Delta.Empty)
  | "unbounded" -> Ok (epoch, Dacs_policy.Delta.Unbounded)
  | "zones" ->
    let* zones =
      List.fold_left
        (fun acc z ->
          let* acc = acc in
          let* pins =
            List.fold_left
              (fun acc p ->
                let* acc = acc in
                let* pin = parse_pin p in
                Ok (pin :: acc))
              (Ok [])
              (Xml.find_children z "Pin")
          in
          Ok (List.rev pins :: acc))
        (Ok [])
        (Xml.find_children node "Zone")
    in
    Ok (epoch, Dacs_policy.Delta.Zones (List.rev zones))
  | other -> Error (Printf.sprintf "unknown region kind %s" other)

let cache_epoch ~epoch = Xml.element "CacheEpoch" ~attrs:[ ("Epoch", string_of_int epoch) ]

let parse_cache_epoch node =
  let* () = expect_tag node "CacheEpoch" in
  let* s = attr_or_error node "Epoch" in
  match int_of_string_opt s with
  | Some e -> Ok e
  | None -> Error "Epoch is not an integer"

(* --- policy distribution ------------------------------------------------------ *)

let policy_query ~scope ~known_version =
  Xml.element "PolicyQuery" ~attrs:[ ("Scope", scope); ("KnownVersion", string_of_int known_version) ]

let parse_policy_query node =
  let* () = expect_tag node "PolicyQuery" in
  let* scope = attr_or_error node "Scope" in
  let* version_s = attr_or_error node "KnownVersion" in
  match int_of_string_opt version_s with
  | Some v -> Ok (scope, v)
  | None -> Error "KnownVersion is not an integer"

let policy_response ~version child =
  Xml.element "PolicyResponse"
    ~attrs:[ ("Version", string_of_int version) ]
    ~children:(match child with None -> [] | Some c -> [ Dacs_policy.Xacml_xml.child_to_xml c ])

let parse_policy_response node =
  let* () = expect_tag node "PolicyResponse" in
  let* version_s = attr_or_error node "Version" in
  match int_of_string_opt version_s with
  | None -> Error "Version is not an integer"
  | Some version -> (
    match List.filter Xml.is_element (Xml.children node) with
    | [] -> Ok (version, None)
    | [ c ] ->
      let* child = Dacs_policy.Xacml_xml.child_of_xml c in
      Ok (version, Some child)
    | _ -> Error "PolicyResponse must carry at most one policy")

let policy_update ~version child =
  Xml.element "PolicyUpdate"
    ~attrs:[ ("Version", string_of_int version) ]
    ~children:[ Dacs_policy.Xacml_xml.child_to_xml child ]

let parse_policy_update node =
  let* () = expect_tag node "PolicyUpdate" in
  let* version_s = attr_or_error node "Version" in
  match int_of_string_opt version_s with
  | None -> Error "Version is not an integer"
  | Some version -> (
    match List.filter Xml.is_element (Xml.children node) with
    | [ c ] ->
      let* child = Dacs_policy.Xacml_xml.child_of_xml c in
      Ok (version, child)
    | _ -> Error "PolicyUpdate must carry exactly one policy")

(* --- capabilities ----------------------------------------------------------------- *)

(* --- offline event logs ------------------------------------------------ *)

type log_event = {
  le_author : string;
  le_seq : int;
  le_at : float;
  le_epoch : int;
  le_frontier : (string * int) list;
  le_kind : string;
  le_fields : (string * string) list;
  le_digest : string;
  le_tag : string;
}

(* Timestamps must round-trip exactly: replicas sort the merged log on
   the [at] each one holds, so a lossy rendering would let two replicas
   disagree on the total order.  %.17g is lossless for doubles. *)
let float_attr f = Printf.sprintf "%.17g" f

let parse_float_attr node name =
  let* s = attr_or_error node name in
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "<%s> %s is not a float: %s" (Xml.tag node) name s)

let parse_int_attr node name =
  let* s = attr_or_error node name in
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "<%s> %s is not an integer: %s" (Xml.tag node) name s)

let frontier_element frontier =
  Xml.element "Frontier"
    ~children:
      (List.map
         (fun (author, seq) ->
           Xml.element "Entry" ~attrs:[ ("Author", author); ("Seq", string_of_int seq) ])
         (List.sort (fun (a, _) (b, _) -> String.compare a b) frontier))

let parse_frontier_element node =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest ->
      let* author = attr_or_error e "Author" in
      let* seq = parse_int_attr e "Seq" in
      go ((author, seq) :: acc) rest
  in
  go [] (Xml.find_children node "Entry")

let log_event_unsigned ev =
  Xml.element "LogEvent"
    ~attrs:
      [
        ("Author", ev.le_author);
        ("Seq", string_of_int ev.le_seq);
        ("At", float_attr ev.le_at);
        ("Epoch", string_of_int ev.le_epoch);
        ("Kind", ev.le_kind);
      ]
    ~children:
      (frontier_element ev.le_frontier
      :: List.map
           (fun (name, value) ->
             Xml.element "Field" ~attrs:[ ("Name", name) ] ~children:[ Xml.text value ])
           ev.le_fields)

let log_event ev =
  match log_event_unsigned ev with
  | Xml.Text _ -> assert false
  | Xml.Element e ->
    Xml.element e.tag
      ~attrs:
        (e.attrs
        @ [
            ("Digest", Dacs_crypto.Encoding.hex_encode ev.le_digest);
            ("Tag", Dacs_crypto.Encoding.hex_encode ev.le_tag);
          ])
      ~children:e.children

let parse_log_event node =
  let* () = expect_tag node "LogEvent" in
  let* le_author = attr_or_error node "Author" in
  let* le_seq = parse_int_attr node "Seq" in
  let* le_at = parse_float_attr node "At" in
  let* le_epoch = parse_int_attr node "Epoch" in
  let* le_kind = attr_or_error node "Kind" in
  let* digest_hex = attr_or_error node "Digest" in
  let* tag_hex = attr_or_error node "Tag" in
  let* le_frontier =
    match Xml.find_child node "Frontier" with
    | None -> Error "LogEvent has no Frontier"
    | Some f -> parse_frontier_element f
  in
  let rec fields acc = function
    | [] -> Ok (List.rev acc)
    | f :: rest ->
      let* name = attr_or_error f "Name" in
      fields ((name, Xml.text_content f) :: acc) rest
  in
  let* le_fields = fields [] (Xml.find_children node "Field") in
  let hex what s =
    match Dacs_crypto.Encoding.hex_decode s with
    | bytes -> Ok bytes
    | exception Invalid_argument _ -> Error (Printf.sprintf "LogEvent %s is not hex" what)
  in
  let* le_digest = hex "Digest" digest_hex in
  let* le_tag = hex "Tag" tag_hex in
  Ok { le_author; le_seq; le_at; le_epoch; le_frontier; le_kind; le_fields; le_digest; le_tag }

let log_sync_request ~frontier =
  Xml.element "LogSyncRequest" ~children:[ frontier_element frontier ]

let parse_log_sync_request node =
  let* () = expect_tag node "LogSyncRequest" in
  match Xml.find_child node "Frontier" with
  | None -> Error "LogSyncRequest has no Frontier"
  | Some f -> parse_frontier_element f

let log_sync_response ~head events =
  Xml.element "LogSyncResponse"
    ~attrs:[ ("Head", Dacs_crypto.Encoding.hex_encode head) ]
    ~children:(List.map log_event events)

let parse_log_sync_response node =
  let* () = expect_tag node "LogSyncResponse" in
  let* head_hex = attr_or_error node "Head" in
  match Dacs_crypto.Encoding.hex_decode head_hex with
  | exception Invalid_argument _ -> Error "LogSyncResponse Head is not hex"
  | head ->
    let rec go acc = function
      | [] -> Ok (head, List.rev acc)
      | e :: rest ->
        let* ev = parse_log_event e in
        go (ev :: acc) rest
    in
    go [] (Xml.find_children node "LogEvent")

let capability_request ~subject ~pairs =
  Xml.element "CapabilityRequest"
    ~children:
      (attr_elements subject
      @ List.map
          (fun (resource, action) ->
            Xml.element "Want" ~attrs:[ ("Resource", resource); ("Action", action) ])
          pairs)

let parse_capability_request node =
  let* () = expect_tag node "CapabilityRequest" in
  let* subject = parse_attr_elements (Xml.find_children node "Attribute") in
  let rec wants acc = function
    | [] -> Ok (List.rev acc)
    | w :: rest ->
      let* resource = attr_or_error w "Resource" in
      let* action = attr_or_error w "Action" in
      wants ((resource, action) :: acc) rest
  in
  let* pairs = wants [] (Xml.find_children node "Want") in
  Ok (subject, pairs)

let revocation_check ~assertion_id =
  Xml.element "RevocationCheck" ~attrs:[ ("AssertionId", assertion_id) ]

let parse_revocation_check node =
  let* () = expect_tag node "RevocationCheck" in
  attr_or_error node "AssertionId"

let revocation_status ~revoked =
  Xml.element "RevocationStatus" ~attrs:[ ("Revoked", string_of_bool revoked) ]

let parse_revocation_status node =
  let* () = expect_tag node "RevocationStatus" in
  let* s = attr_or_error node "Revoked" in
  match bool_of_string_opt s with
  | Some b -> Ok b
  | None -> Error "Revoked is not a boolean"

(* --- access outcomes ------------------------------------------------------------------ *)

let access_granted ?(content = "") ?(encrypted = false) () =
  Xml.element "AccessGranted"
    ~attrs:[ ("Encrypted", string_of_bool encrypted) ]
    ~children:(if content = "" then [] else [ Xml.text content ])

let access_denied ~reason = Xml.element "AccessDenied" ~attrs:[ ("Reason", reason) ]

type access_outcome =
  | Granted of { content : string; encrypted : bool }
  | Denied of string

let parse_access_outcome node =
  match Xml.local_name (Xml.tag node) with
  | "AccessGranted" ->
    Ok
      (Granted
         {
           content = Xml.text_content node;
           encrypted = Xml.attr node "Encrypted" = Some "true";
         })
  | "AccessDenied" ->
    Ok (Denied (Option.value (Xml.attr node "Reason") ~default:""))
  | other -> Error (Printf.sprintf "unexpected access outcome <%s>" other)
