(** Declarative, seeded fault schedules for chaos testing.

    A schedule is a list of fault {!spec}s, each active over a time
    window; {!apply} compiles the schedule onto the {!Engine} as timed
    callbacks that mutate {!Net} state (latencies, drop rate, crashes,
    partitions) when the window opens and restore it when the window
    closes.  Everything is driven by the simulation clock and — for
    {!random_schedule} — an explicit RNG, so a given seed always produces
    the identical fault sequence and the identical trace.

    This is the evaluation instrument behind the dependability claims:
    the chaos suite replays the paper's Fig. 2/Fig. 3 authorisation flows
    under these schedules and checks that enforcement stays safe (no
    permit beyond policy) and becomes live again once faults clear. *)

type window = { from_ : float; until_ : float }
(** Half-open activity interval [\[from_, until_)] in simulation time. *)

type spec =
  | Latency_spike of { a : Net.node_id; b : Net.node_id; latency : float; window : window }
      (** The link [a<->b] runs at [latency] seconds one-way during the
          window, then reverts to its previous setting. *)
  | Drop_burst of { rate : float; window : window }
      (** Global loss probability jumps to [rate] during the window. *)
  | Crash_restart of { node : Net.node_id; at : float; restart : float option }
      (** Fail-stop at [at]; [restart] recovers the node (omit for a
          permanent outage).  Unknown nodes are ignored at fire time. *)
  | Flapping_partition of {
      group_a : Net.node_id list;
      group_b : Net.node_id list;
      period : float;
      window : window;
    }
      (** The two groups are cut for [period] seconds, reconnected for
          [period], and so on; the link is always healed at window end. *)
  | Slow_node of { node : Net.node_id; extra : float; window : window }
      (** Every link touching [node] gains [extra] seconds of latency —
          an overloaded (but correct) service, the slow-PDP fault. *)

val describe : spec -> string
(** One-line human-readable rendering, for logs and bench output. *)

val apply : ?tracer:Dacs_telemetry.Trace.t -> Net.t -> spec list -> unit
(** Compile the schedule onto the network's engine.  Windows already in
    the past fire immediately.  Overlapping windows compose rather than
    clobber each other's saved state: the harshest active drop burst and
    latency spike win, slow-node extras stack, and a node recovers only
    when its last crash window has closed — once every window has closed,
    the network is back at its pre-schedule baseline.

    With [tracer], every window edge is recorded as a span event
    ([fault-open: …] / [fault-cleared: …]) on whatever span is current
    when the window fires — or in the trace-global event log — so a
    rendered trace shows which faults were active around each hop.
    @raise Invalid_argument on empty or negative windows, rates outside
    [0,1], non-positive flap periods or restarts not after their crash. *)

val clears_by : spec list -> float option
(** Earliest time by which every fault has cleared, or [None] if some
    crash never restarts.  Tests schedule their liveness probes after
    this instant. *)

val random_schedule :
  rng:Dacs_crypto.Rng.t -> nodes:Net.node_id list -> horizon:float -> spec list
(** Generate 1–5 random fault specs over the given nodes, every one of
    which clears by [horizon] (crashes always restart) — so liveness
    after [horizon] is a fair demand.  Deterministic in the RNG state. *)
