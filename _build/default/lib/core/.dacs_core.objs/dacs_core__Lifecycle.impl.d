lib/core/lifecycle.ml: Conflict Dacs_crypto Dacs_policy Dacs_xml Hashtbl List Option Pap Printf
