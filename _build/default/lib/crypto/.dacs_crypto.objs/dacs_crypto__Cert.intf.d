lib/crypto/cert.mli: Dacs_xml Rsa
