(* Figure 2 (CAS/VOMS style): a grid client obtains a signed capability
   from the community authorisation service and presents it to compute
   sites; sites verify locally, may consult their own PDP for a final say,
   and honour revocation.

   Run with:  dune exec examples/grid_push_capabilities.exe *)

module Value = Dacs_policy.Value
module Policy = Dacs_policy.Policy
module Rule = Dacs_policy.Rule
module Expr = Dacs_policy.Expr
module Target = Dacs_policy.Target
module Combine = Dacs_policy.Combine
module Net = Dacs_net.Net
module Service = Dacs_ws.Service
module Assertion = Dacs_saml.Assertion
open Dacs_core

let () =
  let net = Net.create () in
  let services = Service.create (Dacs_net.Rpc.create net) in

  (* Community Authorization Service: members of the "climate" project may
     submit jobs to any grid site. *)
  let cas_keys = Dacs_crypto.Rsa.generate (Dacs_crypto.Rng.create 1L) ~bits:512 in
  Net.add_node net "grid.cas";
  let cas_policy =
    Policy.Inline_policy
      (Policy.make ~id:"cas-policy" ~issuer:"grid" ~rule_combining:Combine.First_applicable
         [
           Rule.permit
             ~condition:(Expr.one_of (Expr.subject_attr "project") [ "climate" ])
             ~target:Target.(any |> action_is "action-id" "submit-job")
             "permit-climate-members";
           Rule.deny "default-deny";
         ])
  in
  let cas =
    Capability_service.create services ~node:"grid.cas" ~issuer:"grid-cas" ~keypair:cas_keys
      ~root:cas_policy ~validity:120.0 ()
  in

  (* Two sites.  Site B additionally runs a local PDP that throttles
     anonymous-ish submissions during maintenance. *)
  let trusted issuer = if issuer = "grid-cas" then Some (Capability_service.public_key cas) else None in
  Net.add_node net "site-a.pep";
  let _site_a =
    Pep.create services ~node:"site-a.pep" ~domain:"site-a" ~resource:"cluster-a"
      ~content:"job-queued@site-a"
      (Pep.Push { trusted_issuer = trusted; check_revocation = Some "grid.cas"; local_pdp = None })
  in
  Net.add_node net "site-b.pep";
  let site_b_local =
    Pdp_service.create services ~node:"site-b.pep" ~name:"site-b-local"
      ~root:
        (Policy.Inline_policy
           (Policy.make ~id:"site-b-local" ~issuer:"site-b" ~rule_combining:Combine.First_applicable
              [
                Rule.deny
                  ~target:Target.(any |> subject_is "subject-id" "grumpy-gary")
                  "gary-is-banned-here";
                Rule.permit "otherwise-ok";
              ]))
      ()
  in
  let _site_b =
    Pep.create services ~node:"site-b.pep" ~domain:"site-b" ~resource:"cluster-b"
      ~content:"job-queued@site-b"
      (Pep.Push { trusted_issuer = trusted; check_revocation = Some "grid.cas"; local_pdp = Some site_b_local })
  in

  let client name =
    let node = "laptop-" ^ name in
    Net.add_node net node;
    Client.create services ~node
      ~subject:[ ("subject-id", Value.String name); ("project", Value.String "climate") ]
  in
  let alice = client "alice" and gary = client "grumpy-gary" in

  let show who site = function
    | Ok (Wire.Granted { content; _ }) -> Printf.printf "%-12s @ %s -> GRANTED (%s)\n" who site content
    | Ok (Wire.Denied reason) -> Printf.printf "%-12s @ %s -> DENIED (%s)\n" who site reason
    | Error e -> Printf.printf "%-12s @ %s -> ERROR (%s)\n" who site (Service.error_to_string e)
  in

  (* The same capability works across sites; Gary is pre-screened fine by
     the CAS but blocked by site B's own restriction (the resource
     provider keeps the final say). *)
  Client.request_with_capability alice ~capability_service:"grid.cas" ~pep:"site-a.pep"
    ~resource:"cluster-a" ~action:"submit-job" (show "alice" "site-a");
  Client.request_with_capability alice ~capability_service:"grid.cas" ~pep:"site-b.pep"
    ~resource:"cluster-b" ~action:"submit-job" (show "alice" "site-b");
  Client.request_with_capability gary ~capability_service:"grid.cas" ~pep:"site-a.pep"
    ~resource:"cluster-a" ~action:"submit-job" (show "grumpy-gary" "site-a");
  Client.request_with_capability gary ~capability_service:"grid.cas" ~pep:"site-b.pep"
    ~resource:"cluster-b" ~action:"submit-job" (show "grumpy-gary" "site-b");
  Net.run net;

  Printf.printf "\ncapability requests made: alice=%d gary=%d (reuse across sites)\n"
    (Client.capability_requests_made alice)
    (Client.capability_requests_made gary);

  (* Revocation: the VO revokes every capability issued to Gary; his
     cached capability stops working immediately because sites check. *)
  for i = 1 to Capability_service.issued_count cas do
    Capability_service.revoke cas ~assertion_id:(Printf.sprintf "cap-grid-cas-%d" i)
  done;
  print_endline "\nall capabilities revoked at the CAS; replaying cached capability:";
  Client.request_with_capability alice ~capability_service:"grid.cas" ~pep:"site-a.pep"
    ~resource:"cluster-a" ~action:"submit-job" (show "alice" "site-a");
  Net.run net;

  Printf.printf "\nrevocation checks served by the CAS: %d\n"
    (Capability_service.revocation_checks_served cas)
