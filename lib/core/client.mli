(** Client-side driver for the two authorisation mechanisms.

    In the pull model the client simply invokes the business service
    (Fig. 3); in the push model it first obtains a capability from the
    capability service — cached and reused until it expires — and attaches
    it to the request (Fig. 2). *)

type t

val create :
  Dacs_ws.Service.t ->
  node:Dacs_net.Net.node_id ->
  subject:(string * Dacs_policy.Value.t) list ->
  t
(** [subject] must include a ["subject-id"] attribute. *)

val node : t -> Dacs_net.Net.node_id
val subject_id : t -> string

val request :
  t ->
  pep:Dacs_net.Net.node_id ->
  action:string ->
  ?timeout:float ->
  ?retry:Dacs_net.Rpc.retry_policy ->
  ?notify:(Dacs_net.Rpc.resilience_event -> unit) ->
  (( Wire.access_outcome, Dacs_ws.Service.error) result -> unit) ->
  unit
(** Pull-model access: one call to the PEP.  [retry] (default: single
    attempt) re-sends through the RPC resilience layer when the link to
    the PEP itself is lossy or partitioned. *)

val request_with_capability :
  t ->
  capability_service:Dacs_net.Net.node_id ->
  pep:Dacs_net.Net.node_id ->
  resource:string ->
  action:string ->
  ?timeout:float ->
  ?retry:Dacs_net.Rpc.retry_policy ->
  ?notify:(Dacs_net.Rpc.resilience_event -> unit) ->
  ((Wire.access_outcome, Dacs_ws.Service.error) result -> unit) ->
  unit
(** Push-model access: obtain (or reuse a cached, still-valid) capability
    for (resource, action), then call the PEP with the assertion attached.
    [retry] applies to both the capability fetch and the PEP call. *)

val drop_capabilities : t -> unit
(** Forget cached capabilities (forces re-issuance). *)

val capability_requests_made : t -> int
(** How many capability-request calls this client has issued (cache
    effectiveness measure for the push-vs-pull experiment). *)
