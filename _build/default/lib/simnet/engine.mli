(** Discrete-event simulation engine.

    A priority queue of timestamped callbacks and a virtual clock.  Every
    distributed scenario in DACS (authorisation flows, failovers, cache
    expiry) runs on this engine, so results are deterministic and message
    counts/latencies are exact. *)

type t

val create : ?seed:int64 -> unit -> t
(** Fresh engine at time 0.0.  [seed] initialises the engine's RNG
    (default 1). *)

val now : t -> float
(** Current virtual time (seconds). *)

val rng : t -> Dacs_crypto.Rng.t
(** The engine's deterministic random source. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run a callback [delay] seconds from now.  Negative delays raise. *)

val schedule_at : t -> at:float -> (unit -> unit) -> unit
(** Run a callback at an absolute time (not before the current time). *)

val run : ?until:float -> t -> unit
(** Process events in timestamp order until the queue is empty or the
    clock would pass [until].  Events scheduled while running are
    processed too.  Ties are broken by scheduling order. *)

val step : t -> bool
(** Process a single event; [false] when the queue is empty. *)

val pending : t -> int
(** Number of queued events. *)
