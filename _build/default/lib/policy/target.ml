type match_ = {
  fn : string;
  value : Value.t;
  category : Context.category;
  attribute_id : string;
}

type clause = match_ list

type section = clause list

type t = {
  subjects : section;
  resources : section;
  actions : section;
  environments : section;
}

let any = { subjects = []; resources = []; actions = []; environments = [] }

let make ?(subjects = []) ?(resources = []) ?(actions = []) ?(environments = []) () =
  { subjects; resources; actions; environments }

let match_string category attribute_id s =
  { fn = "string-equal"; value = Value.String s; category; attribute_id }

let subject_is attr v t =
  { t with subjects = t.subjects @ [ [ match_string Context.Subject attr v ] ] }

let resource_is attr v t =
  { t with resources = t.resources @ [ [ match_string Context.Resource attr v ] ] }

let action_is attr v t =
  { t with actions = t.actions @ [ [ match_string Context.Action attr v ] ] }

let for_action name = action_is "action-id" name any
let for_resource name = resource_is "resource-id" name any
let for_subject_role role = subject_is "role" role any

type outcome = Match | No_match | Indeterminate_match of string

(* One match element: true when the function accepts (literal, v) for at
   least one v in the attribute's bag. *)
let eval_match ?resolve ctx m =
  match Expr.match_function m.fn with
  | None -> Indeterminate_match (Printf.sprintf "unknown match function %s" m.fn)
  | Some f -> (
    let bag = Context.bag ctx m.category m.attribute_id in
    let bag =
      if bag = [] then
        match resolve with
        | Some r -> Option.value (r m.category m.attribute_id) ~default:[]
        | None -> []
      else bag
    in
    let rec go errors = function
      | [] -> (
        match errors with
        | [] -> No_match
        | e :: _ -> Indeterminate_match e)
      | v :: rest -> (
        match f m.value v with
        | Ok true -> Match
        | Ok false -> go errors rest
        | Error e -> go (Expr.error_to_string e :: errors) rest)
    in
    go [] bag)

let eval_clause ?resolve ctx clause =
  (* XACML AllOf semantics: any No-match makes the clause No-match, even
     when another member errors; only error-without-mismatch is
     indeterminate. *)
  let rec go saw_error = function
    | [] -> (match saw_error with Some e -> Indeterminate_match e | None -> Match)
    | m :: rest -> (
      match eval_match ?resolve ctx m with
      | Match -> go saw_error rest
      | No_match -> No_match
      | Indeterminate_match e -> go (Some (Option.value saw_error ~default:e)) rest)
  in
  go None clause

let eval_section ?resolve ctx section =
  match section with
  | [] -> Match
  | clauses ->
    let rec go saw_error = function
      | [] -> (match saw_error with Some e -> Indeterminate_match e | None -> No_match)
      | c :: rest -> (
        match eval_clause ?resolve ctx c with
        | Match -> Match
        | No_match -> go saw_error rest
        | Indeterminate_match e -> go (Some e) rest)
    in
    go None clauses

let evaluate ?resolve ctx t =
  let sections = [ t.subjects; t.resources; t.actions; t.environments ] in
  let rec go = function
    | [] -> Match
    | s :: rest -> (
      match eval_section ?resolve ctx s with
      | Match -> go rest
      | No_match -> No_match
      | Indeterminate_match e -> Indeterminate_match e)
  in
  go sections

let pp_match fmt m =
  Format.fprintf fmt "%s(%a, %s/%s)" m.fn Value.pp m.value
    (Context.category_name m.category)
    m.attribute_id

let pp_section name fmt = function
  | [] -> ignore name
  | clauses ->
    Format.fprintf fmt "%s: %a@ " name
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f " | ")
         (fun f clause ->
           Format.pp_print_list
             ~pp_sep:(fun f () -> Format.pp_print_string f " & ")
             pp_match f clause))
      clauses

let pp fmt t =
  if t = any then Format.pp_print_string fmt "<any>"
  else begin
    pp_section "subjects" fmt t.subjects;
    pp_section "resources" fmt t.resources;
    pp_section "actions" fmt t.actions;
    pp_section "environments" fmt t.environments
  end
