type effect = Permit | Deny

type t = {
  id : string;
  fulfill_on : effect;
  parameters : (string * Value.t) list;
}

let make ?(parameters = []) ~fulfill_on id = { id; fulfill_on; parameters }

let applicable obligations effect = List.filter (fun o -> o.fulfill_on = effect) obligations

let audit = make ~fulfill_on:Permit "urn:dacs:obligation:audit"

let content_filter ~forbidden =
  make ~fulfill_on:Permit "urn:dacs:obligation:content-filter"
    ~parameters:[ ("forbidden", Value.String forbidden) ]

let encrypt_response ~strength =
  make ~fulfill_on:Permit "urn:dacs:obligation:encrypt-response"
    ~parameters:[ ("strength", Value.Int strength) ]

let equal a b = a.id = b.id && a.fulfill_on = b.fulfill_on && a.parameters = b.parameters

let pp fmt o =
  Format.fprintf fmt "%s[on=%s%s]" o.id
    (match o.fulfill_on with Permit -> "Permit" | Deny -> "Deny")
    (match o.parameters with
    | [] -> ""
    | ps ->
      "; "
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (Value.to_string v)) ps))
