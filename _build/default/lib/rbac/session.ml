module String_set = Set.Make (String)

type t = { user : Rbac.user; active : String_set.t }

let create _model user = { user; active = String_set.empty }

let user t = t.user

let active_roles t = String_set.elements t.active

(* Active roles plus everything they inherit: DSD must consider the
   permissions actually wielded, not just the explicitly activated names. *)
let effective model active =
  String_set.fold
    (fun r acc -> String_set.union acc (String_set.add r (String_set.of_list (Rbac.juniors model r))))
    active String_set.empty

let activate model t role =
  if not (List.mem role (Rbac.authorized_roles model t.user)) then
    Error (Printf.sprintf "%s is not authorised for role %s" t.user role)
  else begin
    let proposed = String_set.add role t.active in
    let eff = effective model proposed in
    let violated =
      List.find_opt
        (fun (_, c_roles, cardinality) ->
          let overlap = List.length (List.filter (fun r -> String_set.mem r eff) c_roles) in
          overlap >= cardinality)
        (Rbac.dsd_constraints model)
    in
    match violated with
    | Some (name, _, _) ->
      Error (Printf.sprintf "activating %s violates dynamic separation-of-duty constraint %s" role name)
    | None -> Ok { t with active = proposed }
  end

let deactivate t role = { t with active = String_set.remove role t.active }

let permissions model t =
  String_set.fold (fun r acc -> Rbac.role_permissions model r @ acc) t.active []
  |> List.sort_uniq compare

let check_access model t ~action ~resource =
  List.exists
    (fun p -> p.Rbac.action = action && p.Rbac.resource = resource)
    (permissions model t)
