(* The interned serving path: symbol tables, packed request keys and the
   key-scheme toggle.  The load-bearing claims are the QCheck properties —
   interning is injective (equal syms iff equal inputs) and packed request
   keys collide exactly when the legacy canonical attribute multisets are
   equal — plus unit pins for order-insensitivity, Environment exclusion
   and the Decision_cache scheme dispatch. *)

module Value = Dacs_policy.Value
module Context = Dacs_policy.Context
open Dacs_core

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

(* --- generators --------------------------------------------------------- *)

(* A small vocabulary so collisions actually happen: QCheck only exercises
   the "collide iff equal" property if both sides of the iff come up. *)
let gen_word = QCheck.Gen.(oneofl [ "alice"; "bob"; "carol"; "read"; "write"; "file"; "db" ])

let gen_value =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun s -> Value.String s) gen_word);
        (2, map (fun i -> Value.Int i) (0 -- 4));
        (1, map (fun b -> Value.Bool b) bool);
        (1, map (fun s -> Value.Uri ("urn:" ^ s)) gen_word);
      ])

let gen_category =
  QCheck.Gen.oneofl [ Context.Subject; Context.Resource; Context.Action; Context.Environment ]

let gen_attr = QCheck.Gen.(triple gen_category (oneofl [ "id"; "role"; "dept" ]) gen_value)

let gen_context =
  QCheck.Gen.(
    map
      (List.fold_left (fun ctx (cat, id, v) -> Context.add ctx cat id v) Context.empty)
      (list_size (0 -- 8) gen_attr))

let print_context attrs_ctx = Format.asprintf "%a" Context.pp attrs_ctx
let arb_context = QCheck.make ~print:print_context gen_context
let arb_context_pair = QCheck.(pair arb_context arb_context)

(* Ground truth for key equality: the sorted (category, id, value) multiset
   over the Subject/Resource/Action sections — the same canonical form the
   legacy sha scheme serialises before hashing. *)
let canonical ctx =
  let parts = ref [] in
  Context.iter ctx (fun cat id bag ->
      if cat <> Context.Environment then
        List.iter (fun v -> parts := (cat, id, v) :: !parts) bag);
  List.sort compare !parts

(* --- interning injectivity ---------------------------------------------- *)

let prop_string_injective =
  QCheck.Test.make ~name:"intern: equal string syms iff equal strings" ~count:200
    QCheck.(list_of_size Gen.(2 -- 12) (make ~print:Fun.id gen_word))
    (fun words ->
      let t = Intern.create ~expected:16 () in
      let syms = List.map (fun w -> (w, Intern.string t w)) words in
      List.for_all
        (fun (w1, s1) ->
          List.for_all (fun (w2, s2) -> s1 = s2 = (String.equal w1 w2)) syms
          && String.equal (Intern.name t s1) w1)
        syms)

let prop_value_injective =
  QCheck.Test.make ~name:"intern: equal value syms iff equal values" ~count:200
    QCheck.(list_of_size Gen.(2 -- 12) (make ~print:Value.describe gen_value))
    (fun values ->
      let t = Intern.create ~expected:16 () in
      let syms = List.map (fun v -> (v, Intern.value t v)) values in
      List.for_all
        (fun (v1, s1) -> List.for_all (fun (v2, s2) -> s1 = s2 = Value.equal v1 v2) syms)
        syms)

let prop_pair_injective =
  QCheck.Test.make ~name:"intern: equal pair syms iff equal (category, id)" ~count:200
    QCheck.(
      list_of_size
        Gen.(2 -- 12)
        (make
           ~print:(fun (c, id) -> Context.category_name c ^ "/" ^ id)
           Gen.(pair gen_category (oneofl [ "id"; "role"; "dept" ]))))
    (fun pairs ->
      let t = Intern.create ~expected:16 () in
      let syms = List.map (fun (c, id) -> ((c, id), Intern.pair t c id)) pairs in
      List.for_all
        (fun (p1, s1) -> List.for_all (fun (p2, s2) -> s1 = s2 = (compare p1 p2 = 0)) syms)
        syms)

(* --- packed keys collide iff canonical multisets are equal --------------- *)

let prop_key_collision_iff_equal =
  QCheck.Test.make ~name:"intern: packed keys collide iff request multisets equal" ~count:500
    arb_context_pair
    (fun (c1, c2) ->
      let t = Intern.create ~expected:64 () in
      let k1 = Intern.request_key ~table:t c1 and k2 = Intern.request_key ~table:t c2 in
      String.equal k1 k2 = (canonical c1 = canonical c2))

(* The two schemes agree on the equivalence relation they induce: packed
   keys collide exactly when the sha keys do (on NaN-free contexts). *)
let prop_key_schemes_agree =
  QCheck.Test.make ~name:"intern: packed and sha keys induce the same partition" ~count:500
    arb_context_pair
    (fun (c1, c2) ->
      let t = Intern.create ~expected:64 () in
      String.equal (Intern.request_key ~table:t c1) (Intern.request_key ~table:t c2)
      = String.equal (Decision_cache.sha_request_key c1) (Decision_cache.sha_request_key c2))

(* --- unit pins ----------------------------------------------------------- *)

let ctx_alice =
  Context.make
    ~subject:[ ("subject-id", Value.String "alice"); ("role", Value.String "doctor") ]
    ~resource:[ ("resource-id", Value.String "record-7") ]
    ~action:[ ("action-id", Value.String "read") ]
    ()

let test_order_insensitive () =
  let t = Intern.create () in
  let forward =
    Context.empty |> fun c ->
    Context.add c Context.Subject "role" (Value.String "doctor") |> fun c ->
    Context.add c Context.Subject "subject-id" (Value.String "alice") |> fun c ->
    Context.add c Context.Action "action-id" (Value.String "read") |> fun c ->
    Context.add c Context.Resource "resource-id" (Value.String "record-7")
  in
  check string_ "insertion order is canonicalised away"
    (Intern.request_key ~table:t ctx_alice)
    (Intern.request_key ~table:t forward);
  (* Bag order too: the same multiset in two append orders. *)
  let bag1 =
    Context.make ~subject:[ ("role", Value.String "a"); ("role", Value.String "b") ] ()
  in
  let bag2 =
    Context.make ~subject:[ ("role", Value.String "b"); ("role", Value.String "a") ] ()
  in
  check string_ "bag order is canonicalised away"
    (Intern.request_key ~table:t bag1)
    (Intern.request_key ~table:t bag2)

let test_environment_excluded () =
  let t = Intern.create () in
  let with_env = Context.add ctx_alice Context.Environment "current-time" (Value.Time 12.5) in
  check string_ "environment attributes never enter the key"
    (Intern.request_key ~table:t ctx_alice)
    (Intern.request_key ~table:t with_env);
  (* ...but the same attribute in a keyed category does change it. *)
  let with_subject_time = Context.add ctx_alice Context.Subject "current-time" (Value.Time 12.5) in
  check bool_ "subject attributes do enter the key" false
    (String.equal
       (Intern.request_key ~table:t ctx_alice)
       (Intern.request_key ~table:t with_subject_time))

let test_duplicate_values_distinct () =
  (* A multiset, not a set: {a} and {a, a} must key differently. *)
  let t = Intern.create () in
  let once = Context.make ~subject:[ ("role", Value.String "a") ] () in
  let twice =
    Context.make ~subject:[ ("role", Value.String "a"); ("role", Value.String "a") ] ()
  in
  check bool_ "duplicate atoms are kept" false
    (String.equal (Intern.request_key ~table:t once) (Intern.request_key ~table:t twice))

let test_value_types_distinct () =
  let t = Intern.create () in
  let s42 = Intern.value t (Value.String "42")
  and i42 = Intern.value t (Value.Int 42)
  and u42 = Intern.value t (Value.Uri "42") in
  check bool_ "string/int never share a sym" true (s42 <> i42);
  check bool_ "string/uri never share a sym" true (s42 <> u42)

let test_pack2_injective () =
  let seen = Hashtbl.create 64 in
  for a = 0 to 40 do
    for b = 0 to 40 do
      let k = Intern.pack2 a b in
      (match Hashtbl.find_opt seen k with
      | Some (a', b') ->
        Alcotest.failf "pack2 collision: (%d,%d) and (%d,%d) -> %d" a b a' b' k
      | None -> ());
      Hashtbl.replace seen k (a, b)
    done
  done;
  check int_ "all packs distinct" (41 * 41) (Hashtbl.length seen)

let test_stats_count_tables () =
  let t = Intern.create () in
  ignore (Intern.request_key ~table:t ctx_alice);
  let s = Intern.stats t in
  (* Key building touches only the pair/value/atom namespaces; the raw
     string table serves explicit callers (e.g. the attribute cache). *)
  check int_ "strings untouched by keying" 0 s.Intern.strings;
  check int_ "explicit string interning counts" 0 (Intern.string t "alice");
  check int_ "one pair per (category, id)" 4 s.Intern.pairs;
  check int_ "one value per distinct constant" 4 s.Intern.values;
  check int_ "one atom per binding" 4 s.Intern.atoms;
  ignore (Intern.request_key ~table:t ctx_alice);
  let s' = Intern.stats t in
  check int_ "re-keying interns nothing new" s.Intern.atoms s'.Intern.atoms

(* --- reverse lookups (the invalidation plane's decoder) ------------------ *)

let prop_decode_roundtrip =
  QCheck.Test.make ~name:"intern: decode_key inverts request_key up to canonicalisation"
    ~count:500 arb_context
    (fun ctx ->
      let t = Intern.create ~expected:64 () in
      match Intern.decode_key ~table:t (Intern.request_key ~table:t ctx) with
      | None -> false
      | Some decoded -> canonical decoded = canonical ctx)

let test_reverse_lookups () =
  let t = Intern.create () in
  let pair = Intern.pair t Context.Resource "resource-id" in
  check bool_ "pair_info returns the minted position" true
    (Intern.pair_info t pair = (Context.Resource, "resource-id"));
  let v = Intern.value t (Value.Int 7) in
  check bool_ "value_of returns the minted value" true
    (Value.equal (Intern.value_of t v) (Value.Int 7));
  let a = Intern.atom t ~pair ~value:v in
  check bool_ "atom_info returns the (pair, value) syms" true (Intern.atom_info t a = (pair, v));
  match Intern.pair_info t 9999 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown pair sym must raise"

let test_decode_key_roundtrip () =
  let t = Intern.create () in
  let key = Intern.request_key ~table:t ctx_alice in
  match Intern.decode_key ~table:t key with
  | None -> Alcotest.fail "packed key must decode"
  | Some ctx ->
    check bool_ "decoded context carries the same S/R/A multisets" true
      (canonical ctx = canonical ctx_alice);
    check string_ "re-keying the decoded context is stable" key (Intern.request_key ~table:t ctx)

let test_decode_garbage () =
  let t = Intern.create () in
  ignore (Intern.request_key ~table:t ctx_alice);
  (* Anything that is not a dot-separated sequence of known atom syms must
     decode to None — the conservative "drop it" signal for region
     invalidation, notably legacy sha digests. *)
  List.iter
    (fun s -> check bool_ ("undecodable: " ^ s) true (Intern.decode_key ~table:t s = None))
    [ "not-a-key"; "1.2.99999"; Decision_cache.sha_request_key ctx_alice; ".."; "1..2" ]

let with_scheme scheme f =
  let saved = Decision_cache.key_scheme () in
  Decision_cache.set_key_scheme scheme;
  Fun.protect ~finally:(fun () -> Decision_cache.set_key_scheme saved) f

let test_scheme_toggle () =
  check bool_ "packed is the default scheme" true (Decision_cache.key_scheme () = Packed);
  with_scheme Decision_cache.Sha_hex (fun () ->
      check string_ "Sha_hex dispatches to the legacy digest"
        (Decision_cache.sha_request_key ctx_alice)
        (Decision_cache.request_key ctx_alice));
  check string_ "Packed dispatches to the interned key"
    (Intern.request_key ctx_alice)
    (Decision_cache.request_key ctx_alice);
  check bool_ "toggle restored" true (Decision_cache.key_scheme () = Packed)

let test_key_bytes_accounting () =
  let cache = Decision_cache.create ~max_entries:16 ~ttl:60.0 () in
  check int_ "empty cache holds no key bytes" 0 (Decision_cache.key_bytes cache);
  let keys = [ "1.2.3"; "4.5"; "6" ] in
  List.iter
    (fun key -> Decision_cache.put cache ~now:0.0 ~key Dacs_policy.Decision.permit)
    keys;
  check int_ "key_bytes sums resident key lengths"
    (List.fold_left (fun acc k -> acc + String.length k) 0 keys)
    (Decision_cache.key_bytes cache)

let test_packed_keys_are_short () =
  (* The point of the scheme: a packed key is far below the 64-hex digest
     for realistic attribute counts, and stays XML-safe ASCII. *)
  let t = Intern.create () in
  let key = Intern.request_key ~table:t ctx_alice in
  check bool_ "shorter than the sha digest" true
    (String.length key < String.length (Decision_cache.sha_request_key ctx_alice));
  String.iter
    (fun ch ->
      check bool_ "digits and dots only" true (ch = '.' || (ch >= '0' && ch <= '9')))
    key

let () =
  Alcotest.run "dacs_intern"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_string_injective;
            prop_value_injective;
            prop_pair_injective;
            prop_key_collision_iff_equal;
            prop_key_schemes_agree;
            prop_decode_roundtrip;
          ] );
      ( "reverse lookups",
        [
          Alcotest.test_case "pair/value/atom reverse tables roundtrip" `Quick
            test_reverse_lookups;
          Alcotest.test_case "decode_key rebuilds the keyed multisets" `Quick
            test_decode_key_roundtrip;
          Alcotest.test_case "garbage and sha digests decode to None" `Quick
            test_decode_garbage;
        ] );
      ( "request keys",
        [
          Alcotest.test_case "insertion and bag order insensitivity" `Quick
            test_order_insensitive;
          Alcotest.test_case "environment exclusion" `Quick test_environment_excluded;
          Alcotest.test_case "duplicate atoms kept (multiset)" `Quick
            test_duplicate_values_distinct;
          Alcotest.test_case "typed values never alias" `Quick test_value_types_distinct;
          Alcotest.test_case "pack2 injective on dense syms" `Quick test_pack2_injective;
          Alcotest.test_case "stats count table populations" `Quick test_stats_count_tables;
          Alcotest.test_case "packed keys short and XML-safe" `Quick
            test_packed_keys_are_short;
        ] );
      ( "decision cache",
        [
          Alcotest.test_case "key-scheme toggle dispatch" `Quick test_scheme_toggle;
          Alcotest.test_case "resident key byte accounting" `Quick test_key_bytes_accounting;
        ] );
    ]
