type entry = {
  at : float;
  domain : string;
  subject : string;
  resource : string;
  action : string;
  decision : Dacs_policy.Decision.t;
  provenance : Provenance.t option;
}

type t = { mutable entries_rev : entry list; mutable count : int }

let create () = { entries_rev = []; count = 0 }

let record t e =
  t.entries_rev <- e :: t.entries_rev;
  t.count <- t.count + 1

let entries t = List.rev t.entries_rev

let size t = t.count

let permitted_resources t ~subject =
  List.filter_map
    (fun e ->
      if e.subject = subject && e.decision = Dacs_policy.Decision.Permit then Some e.resource
      else None)
    t.entries_rev
  |> List.sort_uniq compare

let by_subject t subject = List.filter (fun e -> e.subject = subject) (entries t)

let find t ?subject ?resource ?decision () =
  let matches e =
    (match subject with None -> true | Some s -> e.subject = s)
    && (match resource with None -> true | Some r -> e.resource = r)
    && match decision with None -> true | Some d -> Dacs_policy.Decision.equal_decision e.decision d
  in
  List.filter matches (entries t)

let merge logs =
  let all = List.concat_map entries logs in
  let sorted = List.stable_sort (fun a b -> compare a.at b.at) all in
  let t = create () in
  List.iter (record t) sorted;
  t

let clear t =
  t.entries_rev <- [];
  t.count <- 0
