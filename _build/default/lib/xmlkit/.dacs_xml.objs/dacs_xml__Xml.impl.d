lib/xmlkit/xml.ml: Buffer Char List Printf String
