test/test_rbac.ml: Alcotest Compile Dacs_policy Dacs_rbac Format List Printf QCheck QCheck_alcotest Rbac Result Session String Textual
