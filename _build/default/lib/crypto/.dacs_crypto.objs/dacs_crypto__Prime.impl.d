lib/crypto/prime.ml: Array Bignum Fun List
