lib/crypto/cert.ml: Dacs_xml Encoding Printf Rsa Set Sha256 String
