type context = { trace_id : int64; span_id : int64 }

type status = Span_ok | Span_error of string

type span = {
  noop : bool;
  s_trace : int64;
  s_id : int64;
  s_parent : int64 option;
  s_name : string;
  s_start : float;
  s_seq : int;
  mutable s_end : float option;
  mutable s_status : status;
  mutable s_attrs : (string * string) list;  (* reversed *)
  mutable s_events : (float * string) list;  (* reversed *)
}

type t = {
  now : unit -> float;
  next_id : unit -> int64;
  mutable enabled : bool;
  mutable cur : context option;
  mutable recorded : span list;  (* reversed *)
  mutable seq : int;
  by_id : (int64, span) Hashtbl.t;
  mutable globals : (float * string) list;  (* reversed *)
}

let create ~now ~next_id () =
  {
    now;
    next_id;
    enabled = false;
    cur = None;
    recorded = [];
    seq = 0;
    by_id = Hashtbl.create 64;
    globals = [];
  }

let set_enabled t on = t.enabled <- on
let enabled t = t.enabled

let current t = t.cur
let set_current t ctx = t.cur <- ctx

let inert =
  {
    noop = true;
    s_trace = 0L;
    s_id = 0L;
    s_parent = None;
    s_name = "";
    s_start = 0.0;
    s_seq = 0;
    s_end = None;
    s_status = Span_ok;
    s_attrs = [];
    s_events = [];
  }

let start_span t ?parent name =
  if not t.enabled then inert
  else begin
    let parent = match parent with Some _ as p -> p | None -> t.cur in
    let trace_id, parent_id =
      match parent with
      | Some ctx -> (ctx.trace_id, Some ctx.span_id)
      | None -> (t.next_id (), None)
    in
    let s =
      {
        noop = false;
        s_trace = trace_id;
        s_id = t.next_id ();
        s_parent = parent_id;
        s_name = name;
        s_start = t.now ();
        s_seq = t.seq;
        s_end = None;
        s_status = Span_ok;
        s_attrs = [];
        s_events = [];
      }
    in
    t.seq <- t.seq + 1;
    t.recorded <- s :: t.recorded;
    Hashtbl.replace t.by_id s.s_id s;
    s
  end

let context s = { trace_id = s.s_trace; span_id = s.s_id }

let annotate s key value = if not s.noop then s.s_attrs <- (key, value) :: s.s_attrs

let set_status s status = if not s.noop then s.s_status <- status

let add_event t s name = if not s.noop then s.s_events <- (t.now (), name) :: s.s_events

let finish t s = if not s.noop && s.s_end = None then s.s_end <- Some (t.now ())

let record t name =
  if t.enabled then begin
    match t.cur with
    | Some ctx -> (
      match Hashtbl.find_opt t.by_id ctx.span_id with
      | Some s -> add_event t s name
      | None -> t.globals <- (t.now (), name) :: t.globals)
    | None -> t.globals <- (t.now (), name) :: t.globals
  end

(* --- inspection --------------------------------------------------------- *)

type span_view = {
  v_trace_id : int64;
  v_span_id : int64;
  v_parent : int64 option;
  v_name : string;
  v_start : float;
  v_end : float option;
  v_status : status;
  v_attrs : (string * string) list;
  v_events : (float * string) list;
}

let in_order t =
  List.sort
    (fun a b -> compare (a.s_start, a.s_seq) (b.s_start, b.s_seq))
    (List.rev t.recorded)

let view s =
  {
    v_trace_id = s.s_trace;
    v_span_id = s.s_id;
    v_parent = s.s_parent;
    v_name = s.s_name;
    v_start = s.s_start;
    v_end = s.s_end;
    v_status = s.s_status;
    v_attrs = List.rev s.s_attrs;
    v_events = List.rev s.s_events;
  }

let spans t = List.map view (in_order t)

let span_count t = List.length t.recorded

let trace_ids t =
  List.fold_left
    (fun acc s -> if List.mem s.s_trace acc then acc else acc @ [ s.s_trace ])
    [] (in_order t)

let global_events t = List.rev t.globals

(* The critical path of a trace: from the root span, repeatedly descend
   into the child that finished last — the chain of spans that actually
   bounded the end-to-end latency.  Unfinished spans count as ending at
   their start. *)
let critical_path ?trace_id t =
  let all = in_order t in
  let tid =
    match trace_id with
    | Some id -> Some id
    | None -> ( match all with [] -> None | s :: _ -> Some s.s_trace)
  in
  match tid with
  | None -> []
  | Some tid ->
    let spans = List.filter (fun s -> s.s_trace = tid) all in
    let ids = List.map (fun s -> s.s_id) spans in
    let ends s = Option.value s.s_end ~default:s.s_start in
    let root =
      List.find_opt
        (fun s -> match s.s_parent with None -> true | Some p -> not (List.mem p ids))
        spans
    in
    let rec walk acc s =
      let kids = List.filter (fun c -> c.s_parent = Some s.s_id) spans in
      match kids with
      | [] -> List.rev (s :: acc)
      | _ ->
        let last =
          List.fold_left
            (fun best c -> if (ends c, c.s_seq) > (ends best, best.s_seq) then c else best)
            (List.hd kids) (List.tl kids)
        in
        walk (s :: acc) last
    in
    (match root with None -> [] | Some r -> List.map view (walk [] r))

let clear t =
  t.recorded <- [];
  t.globals <- [];
  t.cur <- None;
  t.seq <- 0;
  Hashtbl.reset t.by_id

(* --- propagation -------------------------------------------------------- *)

let context_to_string ctx = Printf.sprintf "%Lx-%Lx" ctx.trace_id ctx.span_id

let context_of_string s =
  match String.index_opt s '-' with
  | None -> None
  | Some i -> (
    let parse part =
      try Some (Int64.of_string ("0x" ^ part)) with Invalid_argument _ | Failure _ -> None
    in
    let a = String.sub s 0 i and b = String.sub s (i + 1) (String.length s - i - 1) in
    if a = "" || b = "" then None
    else
      match (parse a, parse b) with
      | Some trace_id, Some span_id -> Some { trace_id; span_id }
      | _ -> None)

(* --- rendering ----------------------------------------------------------- *)

let ms v = Printf.sprintf "%.1fms" (v *. 1000.0)

let render_tree ?trace_id t =
  let all = in_order t in
  let all = match trace_id with None -> all | Some id -> List.filter (fun s -> s.s_trace = id) all in
  let buf = Buffer.create 1024 in
  let traces =
    List.fold_left
      (fun acc s -> if List.mem s.s_trace acc then acc else acc @ [ s.s_trace ])
      [] all
  in
  List.iter
    (fun tid ->
      let spans = List.filter (fun s -> s.s_trace = tid) all in
      let ids = List.map (fun s -> s.s_id) spans in
      let t0 = match spans with [] -> 0.0 | s :: _ -> s.s_start in
      let t_end =
        List.fold_left
          (fun acc s -> Float.max acc (Option.value s.s_end ~default:s.s_start))
          t0 spans
      in
      Buffer.add_string buf
        (Printf.sprintf "trace %Lx  (%d spans, %s)\n" tid (List.length spans) (ms (t_end -. t0)));
      let children parent =
        List.filter (fun s -> s.s_parent = Some parent) spans
      in
      let roots =
        List.filter
          (fun s -> match s.s_parent with None -> true | Some p -> not (List.mem p ids))
          spans
      in
      let span_line s =
        let dur =
          match s.s_end with
          | Some e -> ms (e -. s.s_start)
          | None -> "unfinished"
        in
        let attrs =
          match List.rev s.s_attrs with
          | [] -> ""
          | kvs -> "  " ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
        in
        let status = match s.s_status with Span_ok -> "" | Span_error e -> "  ERROR(" ^ e ^ ")" in
        Printf.sprintf "%s  [+%s %s]%s%s" s.s_name (ms (s.s_start -. t0)) dur attrs status
      in
      let rec emit prefix is_last s =
        let branch = if is_last then "`- " else "|- " in
        Buffer.add_string buf (prefix ^ branch ^ span_line s ^ "\n");
        let child_prefix = prefix ^ if is_last then "   " else "|  " in
        let kids = children s.s_id in
        let events = List.rev s.s_events in
        List.iter
          (fun (at, name) ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s* %s @+%s\n" child_prefix
                 (if kids = [] then "" else "|  ")
                 name (ms (at -. t0))))
          events;
        let n = List.length kids in
        List.iteri (fun i kid -> emit child_prefix (i = n - 1) kid) kids
      in
      let n = List.length roots in
      List.iteri (fun i r -> emit "" (i = n - 1) r) roots)
    traces;
  (match global_events t with
  | [] -> ()
  | events ->
    Buffer.add_string buf "events:\n";
    List.iter
      (fun (at, name) -> Buffer.add_string buf (Printf.sprintf "  @%.3fs %s\n" at name))
      events);
  Buffer.contents buf
