lib/wskit/security.mli: Dacs_crypto Soap
