examples/policy_administration.ml: Client Dacs_core Dacs_crypto Dacs_net Dacs_policy Dacs_ws Lifecycle List Option Pap Pdp_service Pep Printf Wire
