module Xml = Dacs_xml.Xml
module Service = Dacs_ws.Service
module Engine = Dacs_net.Engine
module Net = Dacs_net.Net
module Metrics = Dacs_telemetry.Metrics

type t = {
  services : Service.t;
  node : Net.node_id;
  lease : float;
  (* (kind, node) -> (expiry, registration order) *)
  entries : (string * Net.node_id, float * int) Hashtbl.t;
  c_registrations : Metrics.counter;
  c_lookups : Metrics.counter;
  mutable next_order : int;
}

let node t = t.node
let lease t = t.lease

let now t = Net.now (Service.net t.services)

let lookup t ~kind =
  let live =
    Hashtbl.fold
      (fun (k, n) (expiry, order) acc ->
        if k = kind && expiry > now t then (order, n) :: acc else acc)
      t.entries []
  in
  List.map snd (List.sort compare live)

let registrations t = Metrics.counter_value t.c_registrations
let lookups_served t = Metrics.counter_value t.c_lookups

let register_body ~kind ~node =
  Xml.element "Register" ~attrs:[ ("Kind", kind); ("Node", node) ]

let discover_body ~kind = Xml.element "Discover" ~attrs:[ ("Kind", kind) ]

let endpoints_body nodes =
  Xml.element "Endpoints"
    ~children:(List.map (fun n -> Xml.element "Endpoint" ~attrs:[ ("Node", n) ]) nodes)

let parse_endpoints body =
  if Xml.local_name (Xml.tag body) <> "Endpoints" then Error "expected Endpoints"
  else
    Ok
      (List.filter_map
         (fun e -> Xml.attr e "Node")
         (Xml.find_children body "Endpoint"))

let create services ~node ?(lease = 10.0) () =
  let metrics = Service.metrics services in
  let own ?help n = Metrics.counter metrics ?help ~labels:[ ("node", node) ] n in
  let t =
    {
      services;
      node;
      lease;
      entries = Hashtbl.create 32;
      c_registrations = own "discovery_registrations_total" ~help:"Register calls served";
      c_lookups = own "discovery_lookups_total" ~help:"Discover calls served";
      next_order = 0;
    }
  in
  Service.serve services ~node ~service:"register" (fun ~caller ~headers:_ body reply ->
      match (Xml.attr body "Kind", Xml.attr body "Node") with
      | Some kind, Some advertised ->
        (* Only accept self-advertisements: the caller vouches for itself.
           A node advertising someone else could keep a dead replica
           alive in the registry. *)
        if advertised <> caller then
          reply
            (Dacs_ws.Soap.fault_body
               { Dacs_ws.Soap.code = "soap:Sender"; reason = "nodes may only advertise themselves" })
        else begin
          Metrics.inc t.c_registrations;
          let order =
            match Hashtbl.find_opt t.entries (kind, advertised) with
            | Some (_, order) -> order
            | None ->
              t.next_order <- t.next_order + 1;
              t.next_order
          in
          Hashtbl.replace t.entries (kind, advertised) (now t +. t.lease, order);
          reply (Xml.element "RegisterAck")
        end
      | _ ->
        reply
          (Dacs_ws.Soap.fault_body
             { Dacs_ws.Soap.code = "soap:Sender"; reason = "Register needs Kind and Node" }));
  Service.serve services ~node ~service:"discover" (fun ~caller:_ ~headers:_ body reply ->
      Metrics.inc t.c_lookups;
      match Xml.attr body "Kind" with
      | Some kind -> reply (endpoints_body (lookup t ~kind))
      | None ->
        reply
          (Dacs_ws.Soap.fault_body
             { Dacs_ws.Soap.code = "soap:Sender"; reason = "Discover needs Kind" }));
  t

let advertise t ~services ~node ~kind ?retry () =
  let engine = Net.engine (Service.net services) in
  let period = t.lease /. 2.0 in
  let rec renew () =
    (* A crashed node's sends are dropped by the network, so the
       advertisement naturally lapses; the loop keeps ticking and renews
       again after recovery. *)
    Service.call_resilient services ~src:node ~dst:t.node ~service:"register" ?retry
      (register_body ~kind ~node)
      (fun _ -> ());
    Engine.schedule engine ~delay:period renew
  in
  renew ()

let auto_rebind t ~pep ~kind ?period ?retry () =
  let period = Option.value period ~default:t.lease in
  let engine = Net.engine (Service.net t.services) in
  let pep_node = Pep.node pep in
  let rec refresh () =
    Service.call_resilient t.services ~src:pep_node ~dst:t.node ~service:"discover" ?retry
      (discover_body ~kind)
      (fun response ->
        (match response with
        | Ok body -> (
          match parse_endpoints body with
          | Ok (_ :: _ as endpoints) -> Pep.set_pull_pdps pep endpoints
          | Ok [] | Error _ -> () (* keep the last known list *))
        | Error _ -> ());
        Engine.schedule engine ~delay:period refresh)
  in
  refresh ()
