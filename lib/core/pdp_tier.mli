(** Sharded PDP tier: a client-side dispatcher that spreads authorisation
    load across a set of {!Pdp_service} replicas (§3.1 scale, §3.2
    communication performance).

    Requests are hash-partitioned by their decision-cache key
    ({!Decision_cache.request_key}) on a consistent-hash ring with
    virtual nodes, so each replica sees a stable slice of the request
    space — its policy working set and any downstream caches stay warm —
    and losing a replica only remaps the keys that replica owned.

    Queries headed for the same shard are coalesced into a single batched
    RPC frame (up to [batch] queries per round-trip, flushed after
    [linger] seconds of virtual time; even a 0-second linger merges all
    queries issued at the same virtual instant).  A batch is one
    fault/retry unit: a transport failure fails the whole frame, after
    which each query is individually re-routed to the ring successor of
    its own key, excluding every shard that already failed it.  When no
    shard remains the query fails closed with an [Indeterminate]
    decision.

    The tier registers its telemetry in the bus-wide registry:
    [pdp_tier_dispatch_total{node,shard}] and
    [pdp_tier_batches_total{node,shard}] per shard, the
    [pdp_tier_batch_size{node}] histogram, and tier-level
    [pdp_tier_failovers_total], [pdp_tier_rebalance_total] and
    [pdp_tier_exhausted_total{node}] counters. *)

type t

val create :
  Dacs_ws.Service.t ->
  node:Dacs_net.Net.node_id ->
  shards:Dacs_net.Net.node_id list ->
  ?batch:int ->
  ?linger:float ->
  ?vnodes:int ->
  ?call_timeout:float ->
  ?retry:Dacs_net.Rpc.retry_policy ->
  ?verify:(Dacs_xml.Xml.t -> (Dacs_policy.Decision.result, string) result) ->
  unit ->
  t
(** Dispatcher issuing calls from [node].  [batch] (default 8) is the
    maximum queries per frame; [linger] (default 0) how long a partial
    batch waits before flushing; [vnodes] (default 16) ring points per
    shard; [call_timeout] (default 1 s) and [retry] are handed to the
    underlying batched call.  [verify] decodes each per-query response
    body (default {!Wire.parse_authz_response}; pass a
    {!Wire.verify_signed_authz_response} wrapper to require signed
    decisions). *)

val node : t -> Dacs_net.Net.node_id
val shards : t -> Dacs_net.Net.node_id list
val batch_limit : t -> int

val set_shards : t -> Dacs_net.Net.node_id list -> unit
(** Replace the shard set, rebuilding the ring (a no-op when unchanged;
    otherwise counted in [pdp_tier_rebalance_total]).  Only future
    routing is affected: already-queued batches still go to their shard
    and fail over normally if it is gone.  This is what discovery-driven
    rebinding calls. *)

val shard_for : t -> string -> Dacs_net.Net.node_id option
(** Ring lookup for a raw key (exposed for tests); [None] iff the tier
    has no shards. *)

val decide :
  t ->
  Dacs_policy.Context.t ->
  ((Dacs_policy.Decision.result, string) result -> unit) ->
  unit
(** Route one authorisation query through the tier.  The continuation
    fires exactly once: [Ok] with the shard's answer (which may itself be
    an [Indeterminate] decision — e.g. a malformed response or a SOAP
    fault), or [Error reason] when the tier could not obtain a decision
    at all (no shard reachable, or the tier is empty).  Callers decide
    how to degrade — a PEP falls back to bounded-stale cache, then fails
    closed. *)

type meta = {
  shard : Dacs_net.Net.node_id option;  (** the shard that answered; [None] when none could *)
  batch : int;  (** queries in the frame that carried this answer; 0 when no frame *)
  failovers : int;  (** shards excluded before this answer *)
  epoch : int;  (** deciding PDP's compilation epoch (0 = interpreted/unknown) *)
}

val decide_meta :
  ?key:string ->
  t ->
  Dacs_policy.Context.t ->
  ((Dacs_policy.Decision.result, string) result -> meta -> unit) ->
  unit
(** {!decide} plus serving metadata — what a PEP folds into the
    decision's provenance record.  [key] is the request's routing key
    when the caller already built it ({!Decision_cache.request_key} is
    computed otherwise) — the PEP passes its own cache key down so the
    hot path builds each key exactly once. *)

(** {1 Statistics} *)

type stats = {
  dispatched : int;  (** queries routed (including re-routes) *)
  batches : int;  (** frames flushed *)
  failovers : int;  (** queries re-routed after a shard failure *)
  rebalances : int;  (** ring rebuilds *)
  exhausted : int;  (** queries failed closed *)
}

val stats : t -> stats
(** A thin read over the tier's registry series.  Per-shard sums cover
    the {e current} shard set. *)
