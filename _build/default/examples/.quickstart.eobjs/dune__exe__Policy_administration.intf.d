examples/policy_administration.mli:
