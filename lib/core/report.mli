(** Consolidated management view (§3.2).

    The paper: "it is virtually impossible to obtain a consolidated view
    of the safeguards and security controls that are deployed within the
    entire enterprise ... security systems need a way of providing a
    consolidated view of the access control policy that is enforced."

    These functions gather the live state of every component — PAP
    versions, PDP statistics, per-PEP enforcement counters, audit volumes
    — into one human-readable report for a domain or a whole VO. *)

val domain : Domain.t -> string
val vo : Vo.t -> string
(** The VO report includes every member domain, the consolidated audit
    summary (grants/denies per domain) and the telemetry section. *)

val telemetry : Dacs_ws.Service.t -> string
(** Bus-wide telemetry summary: registry series count, aggregate RPC and
    resilience counters, and tracing volume when tracing is on. *)
