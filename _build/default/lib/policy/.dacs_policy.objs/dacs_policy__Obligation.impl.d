lib/policy/obligation.ml: Format List Printf String Value
