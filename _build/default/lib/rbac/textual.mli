(** Line-oriented textual format for RBAC models.

    Administrators author RBAC state as plain text; the CLI compiles it to
    policy XML.  One directive per line, [#] comments:

    {v
      role doctor
      role nurse
      inherit doctor nurse        # doctor inherits nurse's permissions
      grant nurse read vitals
      user alice doctor
      ssd care-vs-billing 2 doctor billing
      dsd no-dual-hats 2 doctor auditor
    v} *)

val parse : string -> (Rbac.t, string) result
(** Parse a whole document.  Errors carry the line number. *)

val to_string : Rbac.t -> string
(** Serialise a model back to the textual form.  [parse (to_string m)]
    reconstructs an equivalent model. *)
