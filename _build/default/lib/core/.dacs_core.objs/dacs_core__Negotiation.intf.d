lib/core/negotiation.mli:
