(** RSA signatures and encryption over {!Bignum}.

    Real textbook-RSA with PKCS#1-style padding, at simulator-scale key
    sizes (256–1024 bits).  DESIGN.md records the substitution: the paper's
    deployments assume a production PKI; here the algorithms are real but
    the key sizes are chosen for fast deterministic test runs, which
    preserves the behaviour that matters to the paper — signature/
    verification cost asymmetry and signed-message size overhead. *)

type public_key = { n : Bignum.t; e : Bignum.t }

type private_key = {
  pub : public_key;
  d : Bignum.t;
  p : Bignum.t;
  q : Bignum.t;
}

type keypair = { public : public_key; private_ : private_key }

val generate : Rng.t -> bits:int -> keypair
(** Fresh keypair with an [n] of exactly [bits] bits and [e = 65537].
    [bits] must be at least 64. *)

val key_bytes : public_key -> int
(** Width in bytes of signatures and ciphertext blocks for this key. *)

(** {1 Signatures (SHA-256, PKCS#1 v1.5-style padding)} *)

val sign : private_key -> string -> string
(** [sign key msg] is the raw signature (of {!key_bytes} length). *)

val verify : public_key -> string -> signature:string -> bool

(** {1 Block encryption (PKCS#1 v1.5-style random padding)} *)

val encrypt : Rng.t -> public_key -> string -> string
(** @raise Invalid_argument when the plaintext exceeds [key_bytes - 11]. *)

val decrypt : private_key -> string -> string option
(** [None] on padding failure. *)

val max_plaintext : public_key -> int

(** {1 Key serialisation} *)

val public_to_xml : public_key -> Dacs_xml.Xml.t
val public_of_xml : Dacs_xml.Xml.t -> public_key option
val fingerprint : public_key -> string
(** Hex SHA-256 of the canonical public key encoding. *)
