lib/wskit/service.mli: Dacs_net Dacs_xml Soap
