(** Networked trust negotiation (the paper's Traust reference, §3.1).

    A negotiation server guards resources whose access requirements are
    stated over client credential names.  Strangers negotiate over the
    ["negotiate"] service: each round the client discloses the credentials
    its release policies unlock, the server answers with its own unlocked
    credentials, and when the resource requirement is met the server
    issues a signed capability assertion — bridging trust negotiation
    into the push model (Fig. 2). *)

type t

val create :
  Dacs_ws.Service.t ->
  node:Dacs_net.Net.node_id ->
  issuer:string ->
  keypair:Dacs_crypto.Rsa.keypair ->
  credentials:Negotiation.credential list ->
  requirement_for:(resource:string -> action:string -> Negotiation.requirement) ->
  ?validity:float ->
  unit ->
  t
(** [credentials] are the server's own disclosable credentials;
    [requirement_for] gives each (resource, action)'s access requirement
    over client credential names. *)

val node : t -> Dacs_net.Net.node_id
val issuer : t -> string
val public_key : t -> Dacs_crypto.Rsa.public_key
val sessions : t -> int
(** Active (not yet granted/failed) negotiations. *)

type outcome = {
  granted : Dacs_saml.Assertion.t option;
  rounds : int;
  messages : int;  (** network messages exchanged (requests + replies) *)
}

val negotiate :
  t ->
  services:Dacs_ws.Service.t ->
  client_node:Dacs_net.Net.node_id ->
  credentials:Negotiation.credential list ->
  subject:(string * Dacs_policy.Value.t) list ->
  resource:string ->
  action:string ->
  ?max_rounds:int ->
  (outcome -> unit) ->
  unit
(** Client-side driver: runs rounds against the server until granted,
    refused, or no progress ([max_rounds] defaults to 20). *)
