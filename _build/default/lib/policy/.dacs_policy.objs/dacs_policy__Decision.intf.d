lib/policy/decision.mli: Format Obligation
