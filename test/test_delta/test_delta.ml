(* Soundness suite for the change-impact analysis (Delta.between).

   The contract under test: for any pair of policy trees (before, after)
   and any request the computed region does NOT cover, evaluation must
   be identical under both trees — decision, obligations and
   Indeterminate message.  The region may be as wide as it likes
   (Unbounded makes the property trivially true); it may never be too
   narrow.

   The suite proves this three ways:

   - a QCheck differential property (1000 cases with shrinking, all six
     combining algorithms): a random policy, a random structural edit
     (rule added / removed / replaced, shell obligation change), a
     random request — outside the region, decisions must match;
   - the same property over policy sets (random children, child-level
     edits) so the set/children recursion is covered;
   - directed pins for each edit class, plus a mutation check: the same
     soundness checker handed a deliberately under-approximated region
     (Empty, where the publish really changes decisions) must fail —
     proving the gate can detect an unsound analysis at all.

   Policies are integer-coded specs (the test_oracle idiom) so QCheck
   shrinks to a minimal counterexample. *)

module Policy = Dacs_policy.Policy
module Rule = Dacs_policy.Rule
module Target = Dacs_policy.Target
module Expr = Dacs_policy.Expr
module Combine = Dacs_policy.Combine
module Context = Dacs_policy.Context
module Decision = Dacs_policy.Decision
module Obligation = Dacs_policy.Obligation
module Value = Dacs_policy.Value
module Delta = Dacs_policy.Delta
module Conflict = Dacs_core.Conflict

(* --- spec encoding (the oracle vocabulary) ------------------------------ *)

let roles = [| "doctor"; "nurse"; "admin" |]
let resources = [| "chart"; "lab"; "note" |]
let actions = [| "read"; "write" |]

type rule_spec = {
  effect_code : int;
  target_code : int;
  condition_code : int;
}

let rule_of_spec i s =
  let effect = if s.effect_code = 0 then Rule.Permit else Rule.Deny in
  let target =
    match s.target_code with
    | 0 -> Target.any
    | c when c <= Array.length resources ->
      Target.(any |> resource_is "resource-id" resources.(c - 1))
    | c when c <= Array.length resources + Array.length actions ->
      Target.(any |> action_is "action-id" actions.(c - 1 - Array.length resources))
    | c ->
      Target.(
        any
        |> subject_is "role"
             roles.((c - 1 - Array.length resources - Array.length actions)
                    mod Array.length roles))
  in
  let condition =
    match s.condition_code with
    | 0 -> None
    | c when c <= Array.length roles ->
      Some (Expr.one_of (Expr.subject_attr "role") [ roles.(c - 1) ])
    | _ -> Some (Expr.one_of (Expr.subject_attr ~must_be_present:true "clearance") [ "secret" ])
  in
  Rule.make ~target ?condition effect (Printf.sprintf "r%d" i)

let target_code_max = Array.length resources + Array.length actions + Array.length roles
let condition_code_max = Array.length roles + 1

type pspec = { rule_specs : rule_spec list; obligation_code : int }

let policy_of_spec ?(id = "delta-policy") alg p =
  let obligations =
    if p.obligation_code = 0 then []
    else [ Obligation.make ~fulfill_on:Obligation.Permit (Printf.sprintf "urn:test:o%d" p.obligation_code) ]
  in
  Policy.make ~id ~rule_combining:alg ~obligations (List.mapi rule_of_spec p.rule_specs)

type ctx_spec = { role_code : int; resource_code : int; action_code : int }

let ctx_of_spec s =
  let subject =
    ("subject-id", Value.String "alice")
    ::
    (if s.role_code = 0 then []
     else [ ("role", Value.String roles.((s.role_code - 1) mod Array.length roles)) ])
  in
  Context.make ~subject
    ~resource:
      [ ("resource-id", Value.String resources.(s.resource_code mod Array.length resources)) ]
    ~action:[ ("action-id", Value.String actions.(s.action_code mod Array.length actions)) ]
    ()

(* Every context the vocabulary can express, including the role-absent
   ones — the enumerated population the overlap and mutation checks
   sweep. *)
let all_ctx_specs =
  List.concat_map
    (fun role_code ->
      List.concat_map
        (fun resource_code ->
          List.map
            (fun action_code -> { role_code; resource_code; action_code })
            [ 0; 1 ])
        [ 0; 1; 2 ])
    [ 0; 1; 2; 3 ]

let all_ctxs = List.map ctx_of_spec all_ctx_specs

(* Does the spec's context bind this pinned position with a single clean
   string?  The overlap contract (Conflict.zones_overlap) only speaks
   about such requests — an absent attribute is covered by every pin. *)
let spec_binds s (cat, attr) =
  match (cat, attr) with
  | Context.Subject, "subject-id" -> true
  | Context.Subject, "role" -> s.role_code > 0
  | Context.Resource, "resource-id" -> true
  | Context.Action, "action-id" -> true
  | _ -> false

(* --- structural edits --------------------------------------------------- *)

(* An edit is encoded as (kind, position, rule_spec): the decoded edit
   is applied to the old spec to produce the new one, so QCheck shrinks
   over the edit too. *)
type edit =
  | No_op
  | Drop_rule of int
  | Add_rule of int * rule_spec
  | Replace_rule of int * rule_spec
  | Shell_obligations

let apply_edit p = function
  | No_op -> p
  | Drop_rule i ->
    { p with rule_specs = List.filteri (fun j _ -> j <> i mod max 1 (List.length p.rule_specs)) p.rule_specs }
  | Add_rule (i, s) ->
    let n = List.length p.rule_specs in
    let at = if n = 0 then 0 else i mod (n + 1) in
    let rec insert j = function
      | rest when j = at -> s :: rest
      | [] -> [ s ]
      | r :: rest -> r :: insert (j + 1) rest
    in
    { p with rule_specs = insert 0 p.rule_specs }
  | Replace_rule (i, s) ->
    let n = List.length p.rule_specs in
    if n = 0 then { p with rule_specs = [ s ] }
    else { p with rule_specs = List.mapi (fun j r -> if j = i mod n then s else r) p.rule_specs }
  | Shell_obligations -> { p with obligation_code = 1 - min 1 p.obligation_code }

let edit_of_code (kind, pos, s) =
  match kind with
  | 0 -> No_op
  | 1 -> Drop_rule pos
  | 2 -> Add_rule (pos, s)
  | 3 -> Replace_rule (pos, s)
  | _ -> Shell_obligations

(* --- generators --------------------------------------------------------- *)

let arb_rule =
  let open QCheck in
  map
    ~rev:(fun s -> (s.effect_code, s.target_code, s.condition_code))
    (fun (e, t, c) -> { effect_code = e; target_code = t; condition_code = c })
    (triple (int_bound 1) (int_bound target_code_max) (int_bound condition_code_max))

let arb_pspec =
  let open QCheck in
  map
    ~rev:(fun p -> (p.rule_specs, p.obligation_code))
    (fun (rs, o) -> { rule_specs = rs; obligation_code = o })
    (pair (list_of_size (Gen.int_bound 6) arb_rule) (int_bound 1))

let arb_edit =
  let open QCheck in
  map ~rev:(fun _ -> (0, 0, { effect_code = 0; target_code = 0; condition_code = 0 }))
    edit_of_code
    (triple (int_bound 4) (int_bound 6) arb_rule)

let arb_ctx =
  let open QCheck in
  map
    ~rev:(fun s -> (s.role_code, s.resource_code, s.action_code))
    (fun (r, rs, a) -> { role_code = r; resource_code = rs; action_code = a })
    (triple (int_bound (Array.length roles)) (int_bound 2) (int_bound 1))

let result_equal (a : Decision.result) (b : Decision.result) =
  Decision.equal_decision a.Decision.decision b.Decision.decision
  && List.length a.Decision.obligations = List.length b.Decision.obligations
  && List.for_all2 Obligation.equal a.Decision.obligations b.Decision.obligations

let show_result (r : Decision.result) =
  Printf.sprintf "%s [%s]"
    (Decision.decision_to_string r.Decision.decision)
    (String.concat "; " (List.map (fun o -> o.Obligation.id) r.Decision.obligations))

let algorithms =
  [
    ("deny-overrides", Combine.Deny_overrides);
    ("permit-overrides", Combine.Permit_overrides);
    ("first-applicable", Combine.First_applicable);
    ("only-one-applicable", Combine.Only_one_applicable);
    ("ordered-deny-overrides", Combine.Ordered_deny_overrides);
    ("ordered-permit-overrides", Combine.Ordered_permit_overrides);
  ]

(* The soundness checker itself — shared with the mutation check, which
   proves it can detect an unsound region at all. *)
let region_sound region old_root new_root ctx =
  Delta.covers region ctx
  ||
  let before = Policy.evaluate_child ctx old_root in
  let after = Policy.evaluate_child ctx new_root in
  result_equal before after

(* --- property 1: single-policy edits ------------------------------------ *)

let soundness_prop (name, alg) =
  QCheck.Test.make
    ~name:(Printf.sprintf "outside region => identical decision (%s)" name)
    ~count:1000
    QCheck.(triple arb_pspec arb_edit arb_ctx)
    (fun (pspec, edit, cspec) ->
      let old_root = Policy.Inline_policy (policy_of_spec alg pspec) in
      let new_root = Policy.Inline_policy (policy_of_spec alg (apply_edit pspec edit)) in
      let region = Delta.between (Some old_root) (Some new_root) in
      let ctx = ctx_of_spec cspec in
      if region_sound region old_root new_root ctx then true
      else
        QCheck.Test.fail_reportf
          "[%s] request outside region %s decided %s before and %s after the publish" name
          (Delta.to_string region)
          (show_result (Policy.evaluate_child ctx old_root))
          (show_result (Policy.evaluate_child ctx new_root)))

(* A structurally identical pair must always produce the empty region —
   the publish plane's no-op fast path. *)
let noop_prop (name, alg) =
  QCheck.Test.make
    ~name:(Printf.sprintf "no-op publish => empty region (%s)" name)
    ~count:300 arb_pspec
    (fun pspec ->
      let root = Policy.Inline_policy (policy_of_spec alg pspec) in
      Delta.is_empty (Delta.between (Some root) (Some root)))

(* --- property 2: policy-set edits --------------------------------------- *)

type set_edit = Set_noop | Drop_child of int | Add_child of int * pspec | Edit_child of int * edit

let set_of_specs alg specs =
  Policy.Inline_set
    (Policy.make_set ~id:"delta-set" ~policy_combining:alg
       (List.mapi
          (fun i p ->
            Policy.Inline_policy (policy_of_spec ~id:(Printf.sprintf "child%d" i) alg p))
          specs))

let apply_set_edit specs = function
  | Set_noop -> specs
  | Drop_child i ->
    List.filteri (fun j _ -> j <> i mod max 1 (List.length specs)) specs
  | Add_child (i, p) ->
    let n = List.length specs in
    let at = if n = 0 then 0 else i mod (n + 1) in
    let rec insert j = function
      | rest when j = at -> p :: rest
      | [] -> [ p ]
      | c :: rest -> c :: insert (j + 1) rest
    in
    insert 0 specs
  | Edit_child (i, e) ->
    let n = List.length specs in
    if n = 0 then specs
    else List.mapi (fun j p -> if j = i mod n then apply_edit p e else p) specs

let arb_set_edit =
  let open QCheck in
  map
    ~rev:(fun _ -> (0, 0, { rule_specs = []; obligation_code = 0 }, (0, 0, { effect_code = 0; target_code = 0; condition_code = 0 })))
    (fun (kind, pos, p, ecode) ->
      match kind with
      | 0 -> Set_noop
      | 1 -> Drop_child pos
      | 2 -> Add_child (pos, p)
      | _ -> Edit_child (pos, edit_of_code ecode))
    (quad (int_bound 3) (int_bound 4) arb_pspec
       (triple (int_bound 4) (int_bound 6) arb_rule))

let set_soundness_prop (name, alg) =
  QCheck.Test.make
    ~name:(Printf.sprintf "set edit: outside region => identical decision (%s)" name)
    ~count:500
    QCheck.(triple (list_of_size (Gen.int_bound 3) arb_pspec) arb_set_edit arb_ctx)
    (fun (specs, edit, cspec) ->
      let old_root = set_of_specs alg specs in
      let new_root = set_of_specs alg (apply_set_edit specs edit) in
      let region = Delta.between (Some old_root) (Some new_root) in
      let ctx = ctx_of_spec cspec in
      if region_sound region old_root new_root ctx then true
      else
        QCheck.Test.fail_reportf
          "[%s] set-edit request outside region %s changed decision across the publish" name
          (Delta.to_string region))

(* --- property 3: region overlap is conservative ------------------------- *)

(* Conflict.regions_overlap is a pinned-core check: [false] promises
   that no request binding every pinned position with a single clean
   string lies in both regions (conflict.mli).  The conservative fringe
   of [Delta.covers] — attribute-absent or guard-unclean requests are
   covered by every pin — is deliberately outside that promise: two
   regions pinning [role] to disjoint values both cover a role-absent
   request, yet their pinned cores are disjoint.  So the sweep below
   restricts the enumerated population to contexts that bind every
   attribute either region pins. *)
let overlap_prop (name, alg) =
  QCheck.Test.make
    ~name:(Printf.sprintf "non-overlapping regions share no covered request (%s)" name)
    ~count:300
    QCheck.(quad arb_pspec arb_edit arb_pspec arb_edit)
    (fun (pa, ea, pb, eb) ->
      let region_of p e =
        Delta.between
          (Some (Policy.Inline_policy (policy_of_spec alg p)))
          (Some (Policy.Inline_policy (policy_of_spec alg (apply_edit p e))))
      in
      let ra = region_of pa ea and rb = region_of pb eb in
      Conflict.regions_overlap ra rb
      ||
      let pinned = Delta.attributes ra @ Delta.attributes rb in
      not
        (List.exists
           (fun s ->
             List.for_all (spec_binds s) pinned
             &&
             let ctx = ctx_of_spec s in
             Delta.covers ra ctx && Delta.covers rb ctx)
           all_ctx_specs))

(* --- directed pins ------------------------------------------------------ *)

let check = Alcotest.(check bool)

let permit_rule ?(id = "permit-doctor-chart-read") () =
  Rule.permit
    ~target:
      Target.(
        any
        |> subject_is "role" "doctor"
        |> resource_is "resource-id" "chart"
        |> action_is "action-id" "read")
    id

let deny_all = Rule.deny "default-deny"

let pol ?(id = "directed") rules = Policy.Inline_policy (Policy.make ~id ~rule_combining:Combine.First_applicable rules)

let ctx ?role ?(resource = "chart") ?(action = "read") () =
  let subject =
    ("subject-id", Value.String "alice")
    :: (match role with None -> [] | Some r -> [ ("role", Value.String r) ])
  in
  Context.make ~subject
    ~resource:[ ("resource-id", Value.String resource) ]
    ~action:[ ("action-id", Value.String action) ]
    ()

let directed_rule_added () =
  let before = pol [ deny_all ] in
  let after = pol [ permit_rule (); deny_all ] in
  let region = Delta.between (Some before) (Some after) in
  check "region is bounded" true (not (Delta.is_unbounded region) && not (Delta.is_empty region));
  check "added rule's request is covered" true (Delta.covers region (ctx ~role:"doctor" ()));
  check "other-role request excluded" false (Delta.covers region (ctx ~role:"nurse" ()));
  check "other-resource request excluded" false
    (Delta.covers region (ctx ~role:"doctor" ~resource:"lab" ()));
  check "role-absent request conservatively covered" true (Delta.covers region (ctx ()))

let directed_rule_removed () =
  let before = pol [ permit_rule (); deny_all ] in
  let after = pol [ deny_all ] in
  let region = Delta.between (Some before) (Some after) in
  check "removed rule's request is covered" true (Delta.covers region (ctx ~role:"doctor" ()));
  check "other-action request excluded" false
    (Delta.covers region (ctx ~role:"doctor" ~action:"write" ()))

let directed_rule_retargeted () =
  let retargeted =
    Rule.permit
      ~target:
        Target.(
          any
          |> subject_is "role" "doctor"
          |> resource_is "resource-id" "lab"
          |> action_is "action-id" "read")
      "permit-doctor-chart-read"
  in
  let before = pol [ permit_rule (); deny_all ] in
  let after = pol [ retargeted; deny_all ] in
  let region = Delta.between (Some before) (Some after) in
  check "old target covered" true (Delta.covers region (ctx ~role:"doctor" ~resource:"chart" ()));
  check "new target covered" true (Delta.covers region (ctx ~role:"doctor" ~resource:"lab" ()));
  check "untouched resource excluded" false
    (Delta.covers region (ctx ~role:"doctor" ~resource:"note" ()))

let directed_condition_only () =
  let conditioned c =
    Rule.make ~target:(permit_rule ()).Rule.target ?condition:c Rule.Permit "r"
  in
  let before = pol [ conditioned None; deny_all ] in
  let after =
    pol [ conditioned (Some (Expr.one_of (Expr.subject_attr "role") [ "doctor" ])); deny_all ]
  in
  let region = Delta.between (Some before) (Some after) in
  check "region is bounded" true (not (Delta.is_unbounded region));
  check "condition change covers the rule's target" true
    (Delta.covers region (ctx ~role:"doctor" ()));
  check "outside the target stays excluded" false (Delta.covers region (ctx ~role:"nurse" ()))

let directed_obligation_only () =
  let mk obligations =
    Policy.Inline_policy
      (Policy.make ~id:"directed" ~rule_combining:Combine.First_applicable ~obligations
         [ permit_rule (); deny_all ])
  in
  let before = mk [] in
  let after = mk [ Obligation.make ~fulfill_on:Obligation.Permit "urn:log" ] in
  let region = Delta.between (Some before) (Some after) in
  (* A shell change affects every request the policy's target admits —
     here the target is [any], so the region must cover everything. *)
  check "region nonempty" false (Delta.is_empty region);
  List.iter
    (fun c -> check "obligation change covers the policy's whole target" true (Delta.covers region c))
    all_ctxs

let directed_appearance () =
  let p = pol [ deny_all ] in
  check "first publish unbounded" true (Delta.is_unbounded (Delta.between None (Some p)));
  check "retirement unbounded" true (Delta.is_unbounded (Delta.between (Some p) None));
  check "absent to absent empty" true (Delta.is_empty (Delta.between None None))

let directed_env_guard_conservative () =
  (* A rule pinned on an environment attribute changes; requests carry
     no environment bags, so the pin's guard is never clean and every
     request must stay covered (the caches' keys drop conservatively). *)
  let env_rule v =
    Rule.make
      ~target:
        (Target.make
           ~environments:[ [ Target.match_string Context.Environment "time-of-day" v ] ]
           ())
      Rule.Permit "night-shift"
  in
  let before = pol [ env_rule "night"; deny_all ] in
  let after = pol [ env_rule "day"; deny_all ] in
  let region = Delta.between (Some before) (Some after) in
  check "region is bounded" true (not (Delta.is_unbounded region));
  List.iter
    (fun c -> check "env-pinned region covers env-less requests" true (Delta.covers region c))
    all_ctxs

(* The mutation check: the churn-style publish really flips a decision
   (doctor-chart-read goes Deny -> Permit), so the soundness checker
   handed the deliberately under-approximated Empty region must detect
   the divergence — if this test ever passes with [sound = true], the
   gate lost its teeth. *)
let directed_mutation_check () =
  let before = pol [ deny_all ] in
  let after = pol [ permit_rule (); deny_all ] in
  let changed = ctx ~role:"doctor" () in
  check "the publish really changes this decision" false
    (result_equal
       (Policy.evaluate_child changed before)
       (Policy.evaluate_child changed after));
  check "true region is sound over the population" true
    (List.for_all (fun c -> region_sound (Delta.between (Some before) (Some after)) before after c) all_ctxs);
  check "under-approximated Empty region is caught" false
    (List.for_all (fun c -> region_sound Delta.empty before after c) all_ctxs)

let directed_union_and_overlap () =
  let before = pol [ deny_all ] in
  let after = pol [ permit_rule (); deny_all ] in
  let region = Delta.between (Some before) (Some after) in
  check "union with empty is identity" true (Delta.union region Delta.empty = region);
  check "union with unbounded absorbs" true
    (Delta.is_unbounded (Delta.union region Delta.unbounded));
  check "region overlaps itself" true (Conflict.regions_overlap region region);
  check "empty overlaps nothing" false (Conflict.regions_overlap region Delta.empty);
  check "unbounded overlaps everything nonempty" true
    (Conflict.regions_overlap region Delta.unbounded);
  (* Two publishes pinning disjoint resources are provably independent. *)
  let lab_rule =
    Rule.permit
      ~target:Target.(any |> subject_is "role" "doctor" |> resource_is "resource-id" "lab")
      "permit-doctor-lab"
  in
  let other = Delta.between (Some (pol [ deny_all ])) (Some (pol [ lab_rule; deny_all ])) in
  check "disjoint-resource regions do not overlap" false (Conflict.regions_overlap region other)

let directed_attributes () =
  let before = pol [ deny_all ] in
  let after = pol [ permit_rule (); deny_all ] in
  let attrs = Delta.attributes (Delta.between (Some before) (Some after)) in
  check "pinned positions reported" true
    (List.mem (Context.Subject, "role") attrs
    && List.mem (Context.Resource, "resource-id") attrs
    && List.mem (Context.Action, "action-id") attrs);
  check "empty region reports nothing" true (Delta.attributes Delta.empty = [])

let directed =
  [
    Alcotest.test_case "rule added" `Quick directed_rule_added;
    Alcotest.test_case "rule removed" `Quick directed_rule_removed;
    Alcotest.test_case "rule retargeted" `Quick directed_rule_retargeted;
    Alcotest.test_case "condition-only change" `Quick directed_condition_only;
    Alcotest.test_case "obligation-only change" `Quick directed_obligation_only;
    Alcotest.test_case "appearance and retirement" `Quick directed_appearance;
    Alcotest.test_case "environment pins stay conservative" `Quick directed_env_guard_conservative;
    Alcotest.test_case "mutation check: Empty region is caught" `Quick directed_mutation_check;
    Alcotest.test_case "union and overlap algebra" `Quick directed_union_and_overlap;
    Alcotest.test_case "pinned attribute positions" `Quick directed_attributes;
  ]

let () =
  Alcotest.run "dacs_delta"
    [
      ("directed", directed);
      ("soundness", List.map (fun a -> QCheck_alcotest.to_alcotest (soundness_prop a)) algorithms);
      ("no-op", List.map (fun a -> QCheck_alcotest.to_alcotest (noop_prop a)) algorithms);
      ( "set-soundness",
        List.map (fun a -> QCheck_alcotest.to_alcotest (set_soundness_prop a)) algorithms );
      ("overlap", List.map (fun a -> QCheck_alcotest.to_alcotest (overlap_prop a)) algorithms);
    ]
