lib/core/pap.mli: Dacs_net Dacs_policy Dacs_ws
