(** Decision provenance: which rung of the serving ladder answered a
    request, and in what operating conditions (§3 dependability — every
    authorization outcome must be explainable).

    A provenance record is minted once per decision by {!Pep.decide} (and
    the wire handler above it), attached to the audit entry, and carried
    to coalesced waiters verbatim apart from their own [coalesced] flag —
    a waiter was served by the leader's descent. *)

type stage =
  | L1  (** fresh hit in the PEP's own decision cache *)
  | L2  (** fresh hit in the domain's shared cache *)
  | Live  (** answered by a live PDP replica (pull failover or sharded tier) *)
  | Stale  (** bounded-stale serve from an expired L1 entry *)
  | Offline
      (** partitioned: decided from the domain's signed offline event log
          (below bounded-stale, above fail-closed) *)
  | Fail_closed  (** no rung could answer; Indeterminate, denied *)
  | Shed  (** refused by the bounded admission queue before any descent *)
  | Local  (** agent-mode PEP: embedded PDP, no network *)
  | Capability  (** push-mode PEP: decided from a presented capability *)

type t = {
  stage : stage;
  shard : string option;  (** serving PDP replica/shard for [Live] *)
  batch : int;  (** queries in the tier frame that carried the answer; 0 = n/a *)
  coalesced : bool;  (** folded onto an identical in-flight descent *)
  failovers : int;  (** replicas/shards skipped before this answer *)
  retried : bool;  (** resilient-call retries observed during the descent *)
  breaker_tripped : bool;  (** circuit breaker activity observed during the descent *)
  stale_age : float;  (** seconds past TTL for [Stale] serves; 0 otherwise *)
  epoch : int;
      (** deciding PDP's compilation epoch — or, for [Offline] serves,
          the replica's offline epoch; 0 = interpreted/unknown *)
  at : float;  (** virtual-clock time the decision was delivered *)
  log_head : string option;
      (** offline log head (short digest) the decision was served from;
          [Offline] serves only *)
}

val make :
  ?shard:string ->
  ?batch:int ->
  ?coalesced:bool ->
  ?failovers:int ->
  ?retried:bool ->
  ?breaker_tripped:bool ->
  ?stale_age:float ->
  ?epoch:int ->
  ?log_head:string ->
  at:float ->
  stage ->
  t

val stage_name : stage -> string
(** ["l1"], ["l2"], ["live"], ["stale"], ["offline"], ["fail-closed"],
    ["shed"], ["local"], ["capability"]. *)

val stage_index : stage -> int
(** Dense index in [0, stage_count) — what per-stage handle caches (e.g.
    the PEP's ladder-latency histograms) key their memo arrays by. *)

val stage_count : int

val to_string : t -> string
(** One-line rendering, omitting zero-valued fields. *)

val to_json : t -> string
(** All fields, as one JSON object. *)
