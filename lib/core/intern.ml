module Context = Dacs_policy.Context
module Value = Dacs_policy.Value

type sym = int

type t = {
  strings : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable n_strings : int;
  (* One string-keyed table per category: an attribute position resolves
     in a single probe, and the hit path allocates nothing (lookups go
     through Hashtbl.find, not find_opt). *)
  pairs_by_category : (string, int) Hashtbl.t array;
  mutable n_pairs : int;
  (* structural value -> dense value sym *)
  values : (Value.t, int) Hashtbl.t;
  mutable n_values : int;
  (* (pair sym | value sym) -> dense atom sym *)
  atoms : (int, int) Hashtbl.t;
  mutable n_atoms : int;
  (* Reverse tables, one slot per dense sym, so packed cache keys can be
     decoded back into attribute bags for region-targeted invalidation:
     pair sym -> (category code, attribute id); value sym -> the typed
     value; atom sym -> the packed (pair | value) word. *)
  mutable pair_infos : (int * string) array;
  mutable value_of : Value.t array;
  mutable atom_packs : int array;
  (* reusable scratch for key building: atom syms of the request in hand *)
  mutable scratch : int array;
  buf : Buffer.t;
}

let create ?(expected = 1024) () =
  let expected = max 16 (min expected (1 lsl 20)) in
  {
    strings = Hashtbl.create expected;
    names = Array.make (max 16 (min expected 4096)) "";
    n_strings = 0;
    pairs_by_category = Array.init 4 (fun _ -> Hashtbl.create (max 16 (expected / 16)));
    n_pairs = 0;
    values = Hashtbl.create expected;
    n_values = 0;
    atoms = Hashtbl.create expected;
    n_atoms = 0;
    pair_infos = Array.make 16 (0, "");
    value_of = Array.make 16 (Value.String "");
    atom_packs = Array.make 16 0;
    scratch = Array.make 16 0;
    buf = Buffer.create 64;
  }

(* Append [x] at [sym] in a growable dense array. *)
let slot_set get set t sym x =
  let a = get t in
  if sym >= Array.length a then begin
    let bigger = Array.make (2 * Array.length a) a.(0) in
    Array.blit a 0 bigger 0 sym;
    set t bigger
  end;
  (get t).(sym) <- x

(* Sized for a million-user vocabulary's early doublings: large enough
   that the first ~64k symbols never rehash, small enough to allocate in
   every process (tests included) without ceremony. *)
let global = create ~expected:(1 lsl 16) ()

let string t s =
  match Hashtbl.find t.strings s with
  | sym -> sym
  | exception Not_found ->
    let sym = t.n_strings in
    Hashtbl.add t.strings s sym;
    if sym >= Array.length t.names then begin
      let bigger = Array.make (2 * Array.length t.names) "" in
      Array.blit t.names 0 bigger 0 sym;
      t.names <- bigger
    end;
    t.names.(sym) <- s;
    t.n_strings <- sym + 1;
    sym

let name t sym =
  if sym < 0 || sym >= t.n_strings then invalid_arg "Intern.name: unknown sym"
  else t.names.(sym)

let value t v =
  match Hashtbl.find t.values v with
  | sym -> sym
  | exception Not_found ->
    let sym = t.n_values in
    Hashtbl.add t.values v sym;
    slot_set (fun t -> t.value_of) (fun t a -> t.value_of <- a) t sym v;
    t.n_values <- sym + 1;
    sym

let category_code = function
  | Context.Subject -> 0
  | Context.Resource -> 1
  | Context.Action -> 2
  | Context.Environment -> 3

let pair t category id =
  let table = t.pairs_by_category.(category_code category) in
  match Hashtbl.find table id with
  | sym -> sym
  | exception Not_found ->
    let sym = t.n_pairs in
    Hashtbl.add table id sym;
    slot_set
      (fun t -> t.pair_infos)
      (fun t a -> t.pair_infos <- a)
      t sym
      (category_code category, id);
    t.n_pairs <- sym + 1;
    sym

let pack2 a b = (a lsl 31) lor b

let atom t ~pair ~value =
  let key = pack2 pair value in
  match Hashtbl.find t.atoms key with
  | sym -> sym
  | exception Not_found ->
    let sym = t.n_atoms in
    Hashtbl.add t.atoms key sym;
    slot_set (fun t -> t.atom_packs) (fun t a -> t.atom_packs <- a) t sym key;
    t.n_atoms <- sym + 1;
    sym

(* Decimal writer without the intermediate string_of_int allocation. *)
let rec add_decimal buf x =
  if x >= 10 then add_decimal buf (x / 10);
  Buffer.add_char buf (Char.chr (Char.code '0' + (x mod 10)))

let request_key ?(table = global) ctx =
  let t = table in
  let n = ref 0 in
  Context.iter ctx (fun category id bag ->
      match category with
      | Context.Environment -> ()
      | Context.Subject | Context.Resource | Context.Action ->
        let p = pair t category id in
        List.iter
          (fun v ->
            if !n >= Array.length t.scratch then begin
              let bigger = Array.make (2 * Array.length t.scratch) 0 in
              Array.blit t.scratch 0 bigger 0 !n;
              t.scratch <- bigger
            end;
            t.scratch.(!n) <- atom t ~pair:p ~value:(value t v);
            incr n)
          bag);
  (* Insertion sort: the canonical form must not depend on bag order, and
     requests carry a handful of atoms, where this beats Array.sort. *)
  let a = t.scratch in
  for i = 1 to !n - 1 do
    let x = a.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && a.(!j) > x do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- x
  done;
  Buffer.clear t.buf;
  for i = 0 to !n - 1 do
    if i > 0 then Buffer.add_char t.buf '.';
    add_decimal t.buf a.(i)
  done;
  Buffer.contents t.buf

(* --- reverse lookups ----------------------------------------------------- *)

let category_of_code = function
  | 0 -> Context.Subject
  | 1 -> Context.Resource
  | 2 -> Context.Action
  | 3 -> Context.Environment
  | c -> invalid_arg (Printf.sprintf "Intern.category_of_code: %d" c)

let pair_info t sym =
  if sym < 0 || sym >= t.n_pairs then invalid_arg "Intern.pair_info: unknown sym"
  else
    let code, id = t.pair_infos.(sym) in
    (category_of_code code, id)

let value_of t sym =
  if sym < 0 || sym >= t.n_values then invalid_arg "Intern.value_of: unknown sym"
  else t.value_of.(sym)

let atom_info t sym =
  if sym < 0 || sym >= t.n_atoms then invalid_arg "Intern.atom_info: unknown sym"
  else
    let key = t.atom_packs.(sym) in
    (key lsr 31, key land ((1 lsl 31) - 1))

(* Parse one dot-separated decimal segment; None on anything that is not
   a short plain decimal (so 64-hex digests and corrupted keys are
   rejected rather than misread). *)
let decode_key ?(table = global) key =
  let t = table in
  let n = String.length key in
  let ctx = ref Context.empty in
  let rec atom_at start i acc =
    if i = n || key.[i] = '.' then
      if i = start || acc < 0 || acc >= t.n_atoms then None
      else begin
        let pair_sym, value_sym = atom_info t acc in
        let category, id = pair_info t pair_sym in
        ctx := Context.add !ctx category id (value_of t value_sym);
        if i = n then Some !ctx else atom_at (i + 1) (i + 1) 0
      end
    else
      match key.[i] with
      | '0' .. '9' when i - start < 10 ->
        atom_at start (i + 1) ((acc * 10) + (Char.code key.[i] - Char.code '0'))
      | _ -> None
  in
  if n = 0 then Some Context.empty else atom_at 0 0 0

type stats = { strings : int; pairs : int; values : int; atoms : int }

let stats t =
  { strings = t.n_strings; pairs = t.n_pairs; values = t.n_values; atoms = t.n_atoms }
