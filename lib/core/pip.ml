module Service = Dacs_ws.Service
module Context = Dacs_policy.Context
module Value = Dacs_policy.Value
module Metrics = Dacs_telemetry.Metrics

type t = {
  node : Dacs_net.Net.node_id;
  subject_attrs : (string * string, Value.bag) Hashtbl.t;  (* (subject, id) *)
  environment : (string, unit -> Value.bag) Hashtbl.t;
  c_lookups : Metrics.counter;
}

let node t = t.node

let set_subject_attribute t ~subject ~id bag = Hashtbl.replace t.subject_attrs (subject, id) bag

let add_subject_attribute t ~subject ~id v =
  let prev = Option.value (Hashtbl.find_opt t.subject_attrs (subject, id)) ~default:[] in
  Hashtbl.replace t.subject_attrs (subject, id) (prev @ [ v ])

let remove_subject_attribute t ~subject ~id = Hashtbl.remove t.subject_attrs (subject, id)

let set_environment t ~id f = Hashtbl.replace t.environment id f

let lookup t ~category ~id ~subject =
  match category with
  | Context.Subject ->
    Option.value (Hashtbl.find_opt t.subject_attrs (subject, id)) ~default:[]
  | Context.Environment -> (
    match Hashtbl.find_opt t.environment id with Some f -> f () | None -> [])
  | Context.Resource | Context.Action -> []

let create services ~node ~name:_ =
  let t =
    {
      node;
      subject_attrs = Hashtbl.create 64;
      environment = Hashtbl.create 8;
      c_lookups =
        Metrics.counter (Service.metrics services) ~help:"Attribute lookups served"
          ~labels:[ ("node", node) ] "pip_lookups_total";
    }
  in
  Service.serve services ~node ~service:"attribute-query" (fun ~caller:_ ~headers:_ body reply ->
      Metrics.inc t.c_lookups;
      match Wire.parse_attribute_query body with
      | Error e -> reply (Dacs_ws.Soap.fault_body { Dacs_ws.Soap.code = "soap:Sender"; reason = e })
      | Ok (category, id, subject) -> reply (Wire.attribute_result (lookup t ~category ~id ~subject)));
  t

let lookups_served t = Metrics.counter_value t.c_lookups
