(** Streaming, mergeable log-bucket latency histograms.

    The workload engine's per-PEP latency accounting at millions of
    requests: O(1) per observation (a [frexp], no allocation), constant
    memory (one int array of log2 buckets), and mergeable — per-PEP
    instances combine into one population histogram at report time, so
    recording never contends on a shared structure and scenario memory
    stays O(PEPs), not O(observations).

    Buckets are powers of two over a base width: bucket [i] counts
    observations [v <= lo *. 2^i], with one overflow bucket past the
    last bound — the same upper-bound convention as the Prometheus-style
    {!Metrics} histograms, so quantile estimates agree with the
    [workload_latency_seconds] series they replaced. *)

type t

val create : ?lo:float -> ?buckets:int -> unit -> t
(** [lo] (default 0.0005, i.e. 0.5 ms) is the first bucket's upper
    bound; [buckets] (default 20) the number of finite buckets, giving a
    top bound of [lo *. 2^(buckets-1)]. *)

val observe : t -> float -> unit
(** O(1): exponent extraction, no search, no allocation.  Non-positive
    values land in the first bucket. *)

val count : t -> int
val sum : t -> float
val max_seen : t -> float
(** 0 when empty. *)

val merge : t -> t -> t
(** Fresh histogram holding both populations.  Raises [Invalid_argument]
    if the shapes (lo, buckets) differ. *)

val quantile : t -> float -> float
(** Upper-bound estimate of the [q]-quantile (0 on an empty histogram):
    the bound of the bucket holding the [ceil (q * count)]-th
    observation, clamped to {!max_seen} — so the overflow bucket reports
    the exact maximum, and estimates never exceed the observed range. *)

val bucket_counts : t -> (float * int) array
(** (upper bound, count) per finite bucket plus [(infinity, overflow)] —
    for tests and renderers. *)
