lib/core/discovery.mli: Dacs_net Dacs_ws Dacs_xml Pep
