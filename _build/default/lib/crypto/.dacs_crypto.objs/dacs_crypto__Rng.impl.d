lib/crypto/rng.ml: Array Char Int64 List String
