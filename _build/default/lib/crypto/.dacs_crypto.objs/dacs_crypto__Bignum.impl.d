lib/crypto/bignum.ml: Array Char Encoding Format Printf Rng Stdlib String
