lib/policy/expr.ml: Context Format Hashtbl List Option Printf Re Result String Value
