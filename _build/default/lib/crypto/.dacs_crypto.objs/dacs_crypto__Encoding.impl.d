lib/crypto/encoding.ml: Buffer Bytes Char String
