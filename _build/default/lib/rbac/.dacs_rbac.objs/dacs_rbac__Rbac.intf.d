lib/rbac/rbac.mli: Format
