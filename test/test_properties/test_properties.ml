(* Cross-cutting property tests: cache temporal invariants, simulator
   timing, delegation monotonicity, negotiation invariants, conflict
   detector completeness over an enumerable request space, and crypto
   round-trips on random data. *)

module Value = Dacs_policy.Value
module Context = Dacs_policy.Context
module Decision = Dacs_policy.Decision
module Policy = Dacs_policy.Policy
module Rule = Dacs_policy.Rule
module Target = Dacs_policy.Target
module Combine = Dacs_policy.Combine
module Net = Dacs_net.Net
module Engine = Dacs_net.Engine
open Dacs_core

(* --- decision cache: TTL and capacity invariants ------------------------- *)

(* A random schedule of puts, gets and time advances: a get must never
   return a value stored more than TTL ago, and size stays bounded. *)
let prop_cache_ttl_and_capacity =
  let open QCheck in
  let op =
    Gen.(
      frequency
        [
          (3, map (fun k -> `Put (Printf.sprintf "k%d" k)) (0 -- 5));
          (3, map (fun k -> `Get (Printf.sprintf "k%d" k)) (0 -- 5));
          (2, map (fun dt -> `Advance (float_of_int dt)) (1 -- 20));
        ])
  in
  Test.make ~name:"cache: TTL respected and capacity bounded" ~count:300
    (make
       ~print:(fun ops -> string_of_int (List.length ops))
       Gen.(list_size (1 -- 60) op))
    (fun ops ->
      let ttl = 10.0 and max_entries = 3 in
      let cache = Decision_cache.create ~max_entries ~ttl () in
      let clock = ref 0.0 in
      let stored_at : (string, float) Hashtbl.t = Hashtbl.create 8 in
      List.for_all
        (fun op ->
          match op with
          | `Put key ->
            Decision_cache.put cache ~now:!clock ~key Decision.permit;
            Hashtbl.replace stored_at key !clock;
            Decision_cache.size cache <= max_entries
          | `Advance dt ->
            clock := !clock +. dt;
            true
          | `Get key -> (
            match Decision_cache.get cache ~now:!clock ~key with
            | None -> true
            | Some _ -> (
              (* Whatever is returned must have been stored within TTL. *)
              match Hashtbl.find_opt stored_at key with
              | Some at -> !clock < at +. ttl
              | None -> false)))
        ops)

(* --- simulator: exact delivery timing ------------------------------------- *)

let prop_net_delivery_timing =
  let open QCheck in
  Test.make ~name:"net: delivery time = send time + link latency" ~count:200
    (make
       ~print:(fun l -> string_of_int (List.length l))
       Gen.(list_size (1 -- 20) (pair (0 -- 100) (1 -- 50))))
    (fun sends ->
      let net = Net.create () in
      Net.add_node net "a";
      Net.add_node net "b";
      let latency = 0.25 in
      Net.set_latency net "a" "b" latency;
      let ok = ref true in
      Net.set_handler net "b" (fun m ->
          let expected = m.Net.sent_at +. latency in
          if abs_float (Net.now net -. expected) > 1e-9 then ok := false);
      List.iter
        (fun (at, _size) ->
          Engine.schedule (Net.engine net) ~delay:(float_of_int at) (fun () ->
              Net.send net ~src:"a" ~dst:"b" ~category:"t" "payload"))
        sends;
      Net.run net;
      !ok)

let prop_net_conservation =
  (* sent = delivered + dropped, under random loss. *)
  let open QCheck in
  Test.make ~name:"net: sent = delivered + dropped" ~count:100
    (pair (make ~print:string_of_float Gen.(map (fun i -> float_of_int i /. 10.0) (0 -- 10))) small_nat)
    (fun (drop_rate, n) ->
      let n = min n 50 in
      let net = Net.create () in
      Net.add_node net "a";
      Net.add_node net "b";
      Net.set_handler net "b" ignore;
      Net.set_drop_rate net drop_rate;
      for _ = 1 to n do
        Net.send net ~src:"a" ~dst:"b" ~category:"t" "x"
      done;
      Net.run net;
      (Net.total_sent net).Net.count = (Net.total_delivered net).Net.count + Net.dropped_count net)

(* --- delegation: revocation monotonicity ------------------------------------ *)

let prop_delegation_revocation_monotone =
  let open QCheck in
  let authorities = [ "root"; "a"; "b"; "c"; "d" ] in
  let gen =
    Gen.(
      list_size (1 -- 12)
        (triple (oneofl authorities) (oneofl [ "a"; "b"; "c"; "d" ]) bool))
  in
  Test.make ~name:"delegation: revoking a grant never adds authority" ~count:200
    (make ~print:(fun l -> string_of_int (List.length l)) gen)
    (fun grant_specs ->
      let d = Delegation.create ~roots:[ "root" ] in
      let grants =
        List.filter_map
          (fun (delegator, delegate, redelegate) ->
            match
              Delegation.grant d ~can_redelegate:redelegate ~delegator ~delegate ~scope:""
                ~now:0.0 ~expires:100.0 ()
            with
            | Ok g -> Some g
            | Error _ -> None)
          grant_specs
      in
      match grants with
      | [] -> true
      | g :: _ ->
        let before =
          List.filter
            (fun i -> Delegation.authority_for d ~issuer:i ~resource:"x" ~now:1.0)
            authorities
        in
        ignore (Delegation.revoke d ~grant_id:g.Delegation.id);
        let after =
          List.filter
            (fun i -> Delegation.authority_for d ~issuer:i ~resource:"x" ~now:1.0)
            authorities
        in
        List.for_all (fun i -> List.mem i before) after)

(* --- negotiation invariants ---------------------------------------------------- *)

let gen_party prefix other =
  QCheck.Gen.(
    list_size (1 -- 5) (pair (0 -- 4) (opt (0 -- 4))) >|= fun specs ->
    List.mapi
      (fun i (_, lock) ->
        let name = Printf.sprintf "%s%d" prefix i in
        match lock with
        | None -> Negotiation.unprotected name
        | Some j -> Negotiation.protected_by name [ Printf.sprintf "%s%d" other j ])
      specs)

let prop_negotiation_invariants =
  let open QCheck in
  let gen =
    Gen.(
      pair (gen_party "c" "s") (gen_party "s" "c") >>= fun (client, server) ->
      (0 -- 4) >|= fun target_idx ->
      (client, server, [ [ Printf.sprintf "c%d" target_idx ] ]))
  in
  Test.make ~name:"negotiation: disclosures are owned; success iff target met" ~count:300
    (make ~print:(fun _ -> "parties") gen)
    (fun (client_creds, server_creds, target) ->
      let client = { Negotiation.party_name = "c"; credentials = client_creds } in
      let server = { Negotiation.party_name = "s"; credentials = server_creds } in
      let o = Negotiation.negotiate ~client ~server ~target () in
      let owned creds names =
        List.for_all
          (fun n -> List.exists (fun c -> c.Negotiation.name = n) creds)
          names
      in
      owned client_creds o.Negotiation.disclosed_by_client
      && owned server_creds o.Negotiation.disclosed_by_server
      && o.Negotiation.success = Negotiation.satisfied target o.Negotiation.disclosed_by_client
      && o.Negotiation.rounds <= 21)

(* --- conflict detector completeness over an enumerable space ------------------- *)

(* Over targets drawn from small role/resource/action domains, every
   (request, permit-from-A, deny-from-B) witness must be flagged as a
   conflict between the two policies. *)
let roles = [ "r1"; "r2" ]
let resources = [ "x"; "y" ]
let actions = [ "read"; "write" ]

let gen_simple_rule effect_gen =
  QCheck.Gen.(
    effect_gen >>= fun effect ->
    opt (oneofl roles) >>= fun role ->
    opt (oneofl resources) >>= fun resource ->
    opt (oneofl actions) >|= fun action ->
    let target =
      Target.any
      |> (fun t -> match role with Some r -> Target.subject_is "role" r t | None -> t)
      |> (fun t -> match resource with Some r -> Target.resource_is "resource-id" r t | None -> t)
      |> fun t -> match action with Some a -> Target.action_is "action-id" a t | None -> t
    in
    (effect, target))

let all_requests =
  List.concat_map
    (fun role ->
      List.concat_map
        (fun resource ->
          List.map
            (fun action ->
              Context.make
                ~subject:[ ("subject-id", Value.String "u"); ("role", Value.String role) ]
                ~resource:[ ("resource-id", Value.String resource) ]
                ~action:[ ("action-id", Value.String action) ]
                ())
            actions)
        resources)
    roles

let prop_conflict_detector_complete =
  let open QCheck in
  let gen =
    Gen.(
      pair
        (list_size (1 -- 4) (gen_simple_rule (return Rule.Permit)))
        (list_size (1 -- 4) (gen_simple_rule (return Rule.Deny))))
  in
  Test.make ~name:"conflict detector finds every observable permit/deny overlap" ~count:300
    (make ~print:(fun _ -> "policies") gen)
    (fun (permit_rules, deny_rules) ->
      let mk_policy id mk rules =
        Policy.make ~id ~issuer:id ~rule_combining:Combine.Permit_overrides
          (List.mapi (fun i (_, target) -> mk ~target (Printf.sprintf "%s-%d" id i)) rules)
      in
      let pa = mk_policy "pa" (fun ~target id -> Rule.permit ~target id) permit_rules in
      let pb = mk_policy "pb" (fun ~target id -> Rule.deny ~target id) deny_rules in
      let observable_overlap =
        List.exists
          (fun ctx ->
            (Policy.evaluate ctx pa).Decision.decision = Decision.Permit
            && (Policy.evaluate ctx { pb with Policy.rule_combining = Combine.Deny_overrides })
                 .Decision.decision
               = Decision.Deny)
          all_requests
      in
      let detected = Conflict.find_between pa pb <> [] in
      (* Completeness: observable overlap implies detection.  (The detector
         may over-approximate — e.g. environment subtleties — so the
         converse is not required.) *)
      (not observable_overlap) || detected)

(* --- crypto round-trips on random data -------------------------------------------- *)

let shared_keypair = lazy (Dacs_crypto.Rsa.generate (Dacs_crypto.Rng.create 2025L) ~bits:512)

let prop_rsa_sign_verify_random =
  QCheck.Test.make ~name:"rsa: sign/verify on random messages" ~count:50 QCheck.string (fun msg ->
      let kp = Lazy.force shared_keypair in
      let signature = Dacs_crypto.Rsa.sign kp.Dacs_crypto.Rsa.private_ msg in
      Dacs_crypto.Rsa.verify kp.Dacs_crypto.Rsa.public msg ~signature
      && not (Dacs_crypto.Rsa.verify kp.Dacs_crypto.Rsa.public (msg ^ "!") ~signature))

let prop_stream_cipher_roundtrip_random =
  QCheck.Test.make ~name:"stream cipher: roundtrip on random data" ~count:200 QCheck.string
    (fun plain ->
      let rng = Dacs_crypto.Rng.create 9L in
      let key = Dacs_crypto.Stream_cipher.derive_key "k" in
      Dacs_crypto.Stream_cipher.decrypt ~key (Dacs_crypto.Stream_cipher.encrypt rng ~key plain)
      = Some plain)

let prop_assertion_roundtrip_random =
  (* Assertions with random subjects and attribute strings survive XML and
     keep verifying. *)
  QCheck.Test.make ~name:"assertion: XML roundtrip preserves signature" ~count:50
    QCheck.(pair (string_of_size (QCheck.Gen.return 8)) printable_string)
    (fun (subject, attr_value) ->
      let kp = Lazy.force shared_keypair in
      let a =
        Dacs_saml.Assertion.sign kp.Dacs_crypto.Rsa.private_
          (Dacs_saml.Assertion.make ~id:"a" ~issuer:"i" ~subject ~issued_at:0.0
             [ Dacs_saml.Assertion.Attribute_statement [ ("x", Value.String attr_value) ] ])
      in
      match Dacs_saml.Assertion.of_string (Dacs_saml.Assertion.to_string a) with
      | Ok a' -> Dacs_saml.Assertion.verify kp.Dacs_crypto.Rsa.public a'
      | Error _ -> false)

let () =
  Alcotest.run "dacs_properties"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_cache_ttl_and_capacity;
            prop_net_delivery_timing;
            prop_net_conservation;
            prop_delegation_revocation_monotone;
            prop_negotiation_invariants;
            prop_conflict_detector_complete;
            prop_rsa_sign_verify_random;
            prop_stream_cipher_roundtrip_random;
            prop_assertion_roundtrip_random;
          ] );
    ]
