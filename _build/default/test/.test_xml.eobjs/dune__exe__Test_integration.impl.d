test/test_integration.ml: Alcotest Audit Capability_service Client Dacs_core Dacs_crypto Dacs_net Dacs_policy Dacs_rbac Dacs_ws Dacs_xml Decision_cache Domain List Pap Pdp_service Pep Printf Vo Wire
