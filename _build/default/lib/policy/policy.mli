(** Policies and policy sets.

    A policy groups rules under a target and a rule-combining algorithm;
    a policy set groups policies (and nested sets, and by-id references
    resolved against a PAP) under a policy-combining algorithm. *)

type t = {
  id : string;
  version : int;
  description : string;
  issuer : string;  (** administrative authority, used by delegation checks *)
  target : Target.t;
  variables : (string * Expr.t) list;
      (** policy-level variable definitions, referenced from rule
          conditions with {!Expr.Variable_ref} (XACML
          VariableDefinition) *)
  rules : Rule.t list;
  rule_combining : Combine.algorithm;
  obligations : Obligation.t list;
}

type child =
  | Inline_policy of t
  | Inline_set of set
  | Policy_ref of string  (** resolved through the evaluation environment *)

and set = {
  set_id : string;
  set_version : int;
  set_description : string;
  set_target : Target.t;
  children : child list;
  policy_combining : Combine.algorithm;
  set_obligations : Obligation.t list;
}

val make :
  ?version:int ->
  ?description:string ->
  ?issuer:string ->
  ?target:Target.t ->
  ?variables:(string * Expr.t) list ->
  ?rule_combining:Combine.algorithm ->
  ?obligations:Obligation.t list ->
  id:string ->
  Rule.t list ->
  t
(** Defaults: version 1, any target, no variables, deny-overrides. *)

val make_set :
  ?version:int ->
  ?description:string ->
  ?target:Target.t ->
  ?policy_combining:Combine.algorithm ->
  ?obligations:Obligation.t list ->
  id:string ->
  child list ->
  set

(** {1 Evaluation} *)

type ref_resolver = string -> child option
(** Lookup for {!Policy_ref} children (backed by a PAP).  Unresolvable
    references evaluate to Indeterminate. *)

val evaluate : ?resolve:Expr.resolver -> ?resolve_ref:ref_resolver -> Context.t -> t -> Decision.result
(** Policy evaluation: target, then rule combination, then the policy's
    obligations filtered by the outcome. *)

val evaluate_set :
  ?resolve:Expr.resolver -> ?resolve_ref:ref_resolver -> Context.t -> set -> Decision.result

val evaluate_child :
  ?resolve:Expr.resolver -> ?resolve_ref:ref_resolver -> Context.t -> child -> Decision.result

val child_id : child -> string
val applicability : ?resolve:Expr.resolver -> ?resolve_ref:ref_resolver -> Context.t -> child -> Target.outcome

(** {1 Inspection} *)

val rule_count : t -> int
val set_rule_count : ?resolve_ref:ref_resolver -> set -> int
val pp : Format.formatter -> t -> unit
