(** Static validation of policies — the pre-deployment checks the paper's
    management section calls for (write → review → {e test} → issue). *)

type problem = {
  location : string;  (** e.g. ["policy p1 / rule r2"] *)
  message : string;
}

val problem_to_string : problem -> string

val check_policy : Policy.t -> problem list
(** Duplicate rule ids, empty rule lists, unknown or mis-used expression
    functions, [Only_one_applicable] used as a rule-combining algorithm. *)

val check_set : Policy.set -> problem list
(** Recursively checks children; also reports duplicate child ids. *)

val check_child : Policy.child -> problem list

val is_valid : Policy.child -> bool

val shadowed_rules : Policy.t -> (string * string) list
(** Unreachable-rule lint for [first-applicable] policies: pairs
    [(shadowing rule id, shadowed rule id)] where an earlier,
    condition-free rule provably applies whenever the later one does
    (conservative: only wildcard targets and exact target equality are
    recognised), so the later rule can never fire.  Empty for other
    combining algorithms, where later rules still matter. *)
