(** Static policy-conflict analysis (§3.1).

    Enumerates modality conflicts: pairs of rules with opposite effects
    whose applicability constraints can be satisfied by one and the same
    access request.  The analysis is the pre-deployment check the paper
    describes — it assumes single-valued subject attributes (a clause
    requiring two different values for one attribute is treated as
    unsatisfiable), which matches identity/role-style targets. *)

type rule_ref = {
  policy_id : string;
  policy_issuer : string;
  rule_id : string;
  effect : Dacs_policy.Rule.effect;
}

type conflict = {
  permit : rule_ref;
  deny : rule_ref;
  permit_first : bool;  (** the permit rule precedes the deny rule in document order *)
  cross_policy : bool;  (** rules come from different policies *)
  cross_authority : bool;  (** ...issued by different authorities *)
  witness : string;  (** human-readable description of an overlapping request *)
}

val find_in_set : Dacs_policy.Policy.set -> conflict list
(** All modality conflicts between rules anywhere in the set (nested sets
    included; references skipped). *)

val find_between : Dacs_policy.Policy.t -> Dacs_policy.Policy.t -> conflict list
(** Conflicts across exactly two policies. *)

val resolution : Dacs_policy.Combine.algorithm -> conflict -> Dacs_policy.Decision.t
(** Which way the combining algorithm settles this conflict: deny- and
    permit-overrides pick their namesake, first-applicable follows document
    order, only-one-applicable reports the conflict as Indeterminate. *)

(** {1 Change-impact region overlap}

    The same satisfiability machinery applied to {!Delta} regions: can
    one and the same request lie in both regions' pinned cores?  Used to
    reason about publishes whose purges are provably independent. *)

val zones_overlap : Dacs_policy.Delta.zone -> Dacs_policy.Delta.zone -> bool
(** Conservative: [false] only when the two zones pin the same
    (category, attribute) position to disjoint value sets, under the
    single-valued-attribute assumption above. *)

val regions_overlap : Dacs_policy.Delta.t -> Dacs_policy.Delta.t -> bool
(** {!Delta.Empty} overlaps nothing; {!Delta.Unbounded} overlaps every
    non-empty region; zone unions overlap when any zone pair does. *)
