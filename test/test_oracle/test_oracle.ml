(* Differential-testing oracle for evaluator equivalence.

   Five evaluation paths now coexist: the reference tree walk
   (Policy.evaluate), the target-indexed evaluator (Index.evaluate), the
   compiled form (Compiled.evaluate), the sharded PDP tier (Pdp_tier
   routing to Pdp_service replicas over the simulated network — run with
   compiled shards here, so the wire path exercises the compiled
   evaluator too), and the full caching ladder.  This oracle generates
   random policies and request contexts from seeded, shrinkable QCheck
   arbitraries and asserts all paths return identical decisions —
   including obligations and Indeterminate propagation — for every
   combining algorithm, >= 1000 cases each.

   Policies are generated as integer-coded specs (built from int_bound /
   small lists), so QCheck's built-in shrinkers produce a minimal
   counterexample policy+request on failure.  Every failure message
   names the combining algorithm and how to reproduce the seed. *)

module Policy = Dacs_policy.Policy
module Rule = Dacs_policy.Rule
module Target = Dacs_policy.Target
module Expr = Dacs_policy.Expr
module Combine = Dacs_policy.Combine
module Context = Dacs_policy.Context
module Decision = Dacs_policy.Decision
module Obligation = Dacs_policy.Obligation
module Value = Dacs_policy.Value
module Index = Dacs_policy.Index
module Compiled = Dacs_policy.Compiled
module Net = Dacs_net.Net
module Service = Dacs_ws.Service
open Dacs_core

(* --- spec encoding ------------------------------------------------------ *)

(* Small closed vocabularies keep collision probability high: targets
   that sometimes match, conditions that sometimes error. *)
let roles = [| "doctor"; "nurse"; "admin" |]
let resources = [| "chart"; "lab"; "note" |]
let actions = [| "read"; "write" |]

type rule_spec = {
  effect_code : int;  (* 0 permit, 1 deny *)
  target_code : int;  (* 0 any; 1.. resource_is; then action_is; then subject_is *)
  condition_code : int;  (* 0 none; 1.. one_of role; last: missing-attr error *)
  obligation_code : int;  (* 0 none; 1 permit obligation; 2 deny obligation *)
}

let rule_of_spec i s =
  let effect = if s.effect_code = 0 then Rule.Permit else Rule.Deny in
  let target =
    match s.target_code with
    | 0 -> Target.any
    | c when c <= Array.length resources ->
      Target.(any |> resource_is "resource-id" resources.(c - 1))
    | c when c <= Array.length resources + Array.length actions ->
      Target.(any |> action_is "action-id" actions.(c - 1 - Array.length resources))
    | c -> Target.(any |> subject_is "role" roles.((c - 1 - Array.length resources - Array.length actions) mod Array.length roles))
  in
  let condition =
    match s.condition_code with
    | 0 -> None
    | c when c <= Array.length roles -> Some (Expr.one_of (Expr.subject_attr "role") [ roles.(c - 1) ])
    | _ ->
      (* The Indeterminate generator: a designator that must be present
         but never is. *)
      Some (Expr.one_of (Expr.subject_attr ~must_be_present:true "clearance") [ "secret" ])
  in
  Rule.make ~target ?condition effect (Printf.sprintf "r%d" i)

let target_code_max = Array.length resources + Array.length actions + Array.length roles
let condition_code_max = Array.length roles + 1

let obligations_of_spec i code =
  match code with
  | 0 -> []
  | 1 -> [ Obligation.make ~fulfill_on:Obligation.Permit (Printf.sprintf "urn:test:p%d" i) ]
  | _ -> [ Obligation.make ~fulfill_on:Obligation.Deny (Printf.sprintf "urn:test:d%d" i) ]

(* A policy is a list of rule specs plus its own obligations; rules keep
   per-rule obligations out (the engine attaches obligations at policy
   level), so the obligation spec rides on the policy. *)
let policy_of_spec alg (rule_specs, obligation_code) =
  let rules = List.mapi rule_of_spec rule_specs in
  let obligations =
    obligations_of_spec 0 (if obligation_code = 0 then 0 else 1)
    @ obligations_of_spec 1 (if obligation_code = 0 then 0 else 2)
  in
  Policy.make ~id:"oracle-policy" ~rule_combining:alg ~obligations rules

type ctx_spec = { role_code : int; resource_code : int; action_code : int }

let ctx_of_spec s =
  let subject =
    ("subject-id", Value.String "alice")
    ::
    (* role_code 0 omits the attribute entirely (absence paths). *)
    (if s.role_code = 0 then [] else [ ("role", Value.String roles.((s.role_code - 1) mod Array.length roles)) ])
  in
  Context.make ~subject
    ~resource:[ ("resource-id", Value.String resources.(s.resource_code mod Array.length resources)) ]
    ~action:[ ("action-id", Value.String actions.(s.action_code mod Array.length actions)) ]
    ()

let arb_case =
  let open QCheck in
  let arb_rule =
    map
      ~rev:(fun s -> (s.effect_code, s.target_code, s.condition_code, s.obligation_code))
      (fun (e, t, c, o) -> { effect_code = e; target_code = t; condition_code = c; obligation_code = o })
      (quad (int_bound 1) (int_bound target_code_max) (int_bound condition_code_max) (int_bound 2))
  in
  let arb_ctx =
    map
      ~rev:(fun s -> (s.role_code, s.resource_code, s.action_code))
      (fun (r, rs, a) -> { role_code = r; resource_code = rs; action_code = a })
      (triple (int_bound (Array.length roles)) (int_bound 2) (int_bound 1))
  in
  pair (pair (list_of_size (Gen.int_bound 6) arb_rule) (int_bound 1)) arb_ctx

let result_equal (a : Decision.result) (b : Decision.result) =
  Decision.equal_decision a.Decision.decision b.Decision.decision
  && List.length a.Decision.obligations = List.length b.Decision.obligations
  && List.for_all2 Obligation.equal a.Decision.obligations b.Decision.obligations

let show_result (r : Decision.result) =
  Printf.sprintf "%s [%s]"
    (Decision.decision_to_string r.Decision.decision)
    (String.concat "; " (List.map (fun o -> o.Obligation.id) r.Decision.obligations))

(* Counterexample context: the algorithm that diverged plus how to replay
   the run — QCheck only prints the shrunk case, not which of the six
   parameterised tests it came from. *)
let seed_hint () =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> Printf.sprintf "QCHECK_SEED=%s" s
  | None -> "rerun with QCHECK_SEED=<'qcheck random seed' printed above> to reproduce"

let fail_diverged ~alg ~expected ~got expected_label got_label =
  QCheck.Test.fail_reportf "[%s] %s %s <> %s %s (%s)" alg expected_label (show_result expected)
    got_label (show_result got) (seed_hint ())

(* --- oracle 1: reference vs target index vs compiled ------------------- *)

let index_oracle (name, alg) =
  QCheck.Test.make
    ~name:(Printf.sprintf "compiled/index == reference (%s)" name)
    ~count:1000 arb_case
    (fun (pspec, cspec) ->
      let policy = policy_of_spec alg pspec in
      let ctx = ctx_of_spec cspec in
      let reference = Policy.evaluate ctx policy in
      let indexed = Index.evaluate ctx (Index.build policy) in
      let compiled = Compiled.evaluate ctx (Compiled.compile (Policy.Inline_policy policy)) in
      if not (result_equal reference indexed) then
        fail_diverged ~alg:name ~expected:reference ~got:indexed "reference" "indexed"
      else if not (result_equal reference compiled) then
        fail_diverged ~alg:name ~expected:reference ~got:compiled "reference" "compiled"
      else true)

(* --- oracle 2: reference vs sharded tier ------------------------------- *)

(* One tier evaluation on a fresh simulated network: three replicas
   serving the generated policy, one batched query routed by the ring.
   The tier must agree with the in-process reference evaluation — wire
   encoding, batching and shard routing may not change any decision. *)
let tier_evaluate ?(compiled = false) root ctx =
  let net = Net.create ~seed:11L () in
  let services = Service.create (Dacs_net.Rpc.create net) in
  let shards =
    List.init 3 (fun i ->
        let node = Printf.sprintf "pdp%d" i in
        Net.add_node net node;
        ignore (Pdp_service.create services ~node ~name:node ~root ~compiled ());
        node)
  in
  Net.add_node net "dispatch";
  let tier = Pdp_tier.create services ~node:"dispatch" ~shards () in
  let answer = ref None in
  Pdp_tier.decide tier ctx (fun r -> answer := Some r);
  Net.run net;
  !answer

let tier_oracle (name, alg) =
  QCheck.Test.make
    ~name:(Printf.sprintf "sharded tier (compiled) == reference (%s)" name)
    ~count:1000 arb_case
    (fun (pspec, cspec) ->
      let policy = policy_of_spec alg pspec in
      let ctx = ctx_of_spec cspec in
      let reference = Policy.evaluate ctx policy in
      match tier_evaluate ~compiled:true (Policy.Inline_policy policy) ctx with
      | None -> QCheck.Test.fail_reportf "[%s] tier never answered (%s)" name (seed_hint ())
      | Some (Error e) ->
        QCheck.Test.fail_reportf "[%s] tier failed closed: %s (%s)" name e (seed_hint ())
      | Some (Ok tiered) ->
        if result_equal reference tiered then true
        else fail_diverged ~alg:name ~expected:reference ~got:tiered "reference" "compiled tier")

(* --- oracle 3: reference vs the full caching ladder -------------------- *)

(* One request replayed through every stage of the PEP's decision ladder
   (E17): a cold descent that fills the caches, a warm-L1 hit, an
   L2-only hit (L1 purged), a live re-evaluation that exercises the
   PDP's warmed attribute cache (both decision caches purged), a
   coalesced pair (leader + single-flight waiter), and the degraded
   rungs — a bounded-stale serve from an expired L1 entry with the whole
   tier dark, and the fail-closed floor once even that entry is purged.
   The client context deliberately withholds the role attribute so the
   PDP must resolve it from a PIP via the batched fetcher — the
   reference evaluation sees the same attributes inline.  No stage may
   change the decision or the obligations (the fail-closed floor, which
   answers Indeterminate by design, asserts that shape instead), and
   every stage's provenance record must name the rung that was forced. *)
let cached_ladder_evaluate root cspec =
  let net = Net.create ~seed:23L () in
  let services = Service.create (Dacs_net.Rpc.create net) in
  let add id =
    Net.add_node net id;
    id
  in
  let pip = Pip.create services ~node:(add "pip") ~name:"pip" in
  if cspec.role_code <> 0 then
    Pip.add_subject_attribute pip ~subject:"alice" ~id:"role"
      (Value.String roles.((cspec.role_code - 1) mod Array.length roles));
  ignore
    (Pdp_service.create services ~node:(add "pdp") ~name:"pdp" ~root ~pips:[ "pip" ]
       ~attr_cache_ttl:600.0 ());
  let l2 = Cache_hierarchy.L2.create services ~node:(add "l2") ~ttl:600.0 () in
  let cache = Decision_cache.create ~ttl:600.0 () in
  let pep =
    Pep.create services ~node:(add "pep") ~domain:"d" ~resource:"r" ~content:"c"
      (Pep.Pull { pdps = [ "pdp" ]; cache = Some cache; call_timeout = 5.0 })
  in
  Pep.set_l2 pep (Some (Cache_hierarchy.L2.node l2));
  (* Lean context: role withheld, resolved at the PIP on the cached path. *)
  let ctx =
    Context.make
      ~subject:[ ("subject-id", Value.String "alice") ]
      ~resource:
        [ ("resource-id", Value.String resources.(cspec.resource_code mod Array.length resources)) ]
      ~action:[ ("action-id", Value.String actions.(cspec.action_code mod Array.length actions)) ]
      ()
  in
  Pep.set_stale_window pep 2000.0;
  let decide () =
    let answer = ref None in
    Pep.decide_explained pep ctx (fun r p -> answer := Some (r, p));
    Net.run net;
    !answer
  in
  let purge_decision_caches () =
    Cache_hierarchy.L2.invalidate_all l2;
    Pep.invalidate_cache pep;
    Net.run net
  in
  let cold = decide () in
  let warm_l1 = decide () in
  Pep.invalidate_cache pep;
  let l2_only = decide () in
  purge_decision_caches ();
  let attr_cached = decide () in
  purge_decision_caches ();
  let leader = ref None and waiter = ref None in
  Pep.decide_explained pep ctx (fun r p -> leader := Some (r, p));
  Pep.decide_explained pep ctx (fun r p -> waiter := Some (r, p));
  Net.run net;
  (* Degraded rungs: kill the PDP and the shared L2, then advance the
     virtual clock past the decision TTL so the leader's L1 entry is
     expired — the ladder has to fall through to the bounded-stale
     serve.  Purging L1 after that leaves nothing to answer from, which
     is the fail-closed floor. *)
  Net.crash net "pdp";
  Net.crash net "l2";
  Dacs_net.Engine.schedule (Net.engine net) ~delay:700.0 (fun () -> ());
  Net.run net;
  let stale = decide () in
  (* Offline rung: purge the expired L1 entry, attach an offline replica
     holding the same policy (and the subject's role as a signed grant)
     — with the tier dark and nothing stale to serve, the ladder must
     descend to the signed log.  The offline evaluation sees exactly the
     reference's attributes, so the decision must still match; an
     Indeterminate has no offline basis and falls through to the
     fail-closed floor without ever being logged. *)
  Pep.invalidate_cache pep;
  let offline_replica =
    Offline.create ~now:(fun () -> Dacs_net.Engine.now (Net.engine net))
      ~key:(Dacs_crypto.Sha256.digest "oracle-mesh") ~author:"d" ()
  in
  Offline.publish offline_replica root;
  if cspec.role_code <> 0 then
    Offline.grant offline_replica ~subject:"alice" ~attr:"role"
      ~value:roles.((cspec.role_code - 1) mod Array.length roles);
  Pep.set_offline_replica pep (Some offline_replica);
  let offline = decide () in
  (* Detaching the replica (without touching L1) exposes the fail-closed
     floor — and proves offline answers were never written to L1, which
     would otherwise answer here. *)
  Pep.set_offline_replica pep None;
  let fail_closed = decide () in
  (* Indeterminate answers are deliberately never cached (a statement
     about the machinery, not the policy), so when the corpus case
     evaluates to an error every "cached" rung re-descends live and the
     degraded rungs land on the fail-closed floor. *)
  let cacheable =
    match cold with
    | Some ({ Decision.decision = Decision.Indeterminate _; _ }, _) -> false
    | _ -> true
  in
  (match offline with
  | Some (_, { Provenance.stage = Provenance.Offline; log_head = None; _ }) ->
    QCheck.Test.fail_reportf "offline serve without a log head (%s)" (seed_hint ())
  | _ -> ());
  if (not cacheable) && (Offline.stats offline_replica).Offline.offline_decides > 0 then
    QCheck.Test.fail_reportf "indeterminate was logged as an offline decision (%s)" (seed_hint ());
  [
    ("cold", Provenance.Live, `Equal, cold);
    ("warm-l1", (if cacheable then Provenance.L1 else Provenance.Live), `Equal, warm_l1);
    ("l2-only", (if cacheable then Provenance.L2 else Provenance.Live), `Equal, l2_only);
    ("attr-cache", Provenance.Live, `Equal, attr_cached);
    ("coalesced-leader", Provenance.Live, `Equal, !leader);
    ("coalesced-waiter", Provenance.Live, `Equal, !waiter);
    (if cacheable then ("stale", Provenance.Stale, `Equal, stale)
     else ("stale", Provenance.Fail_closed, `Indeterminate, stale));
    (if cacheable then ("offline", Provenance.Offline, `Equal, offline)
     else ("offline", Provenance.Fail_closed, `Indeterminate, offline));
    ("fail-closed", Provenance.Fail_closed, `Indeterminate, fail_closed);
  ]

(* Shared assertion for both cached-ladder oracles: the provenance names
   the forced rung, the coalesced flag singles out the waiter, and the
   answer matches the reference (or is Indeterminate on the fail-closed
   floor, where diverging from the reference is the point). *)
let check_ladder_stage ~alg:name ~reference
    (stage, expected_stage, kind, answer) =
  match answer with
  | None ->
    QCheck.Test.fail_reportf "[%s] stage %s never answered (%s)" name stage (seed_hint ())
  | Some (cached, (prov : Provenance.t)) ->
    if prov.Provenance.stage <> expected_stage then
      QCheck.Test.fail_reportf "[%s] stage %s served from rung %s, expected %s (%s)" name stage
        (Provenance.stage_name prov.Provenance.stage)
        (Provenance.stage_name expected_stage)
        (seed_hint ())
    else if prov.Provenance.coalesced <> (stage = "coalesced-waiter") then
      QCheck.Test.fail_reportf "[%s] stage %s coalesced flag is %b (%s)" name stage
        prov.Provenance.coalesced (seed_hint ())
    else
      match kind with
      | `Indeterminate -> (
        match cached.Decision.decision with
        | Decision.Indeterminate _ -> true
        | d ->
          QCheck.Test.fail_reportf "[%s] stage %s answered %s instead of failing closed (%s)"
            name stage (Decision.decision_to_string d) (seed_hint ()))
      | `Equal ->
        if result_equal reference cached then true
        else
          fail_diverged ~alg:name ~expected:reference ~got:cached "reference"
            (Printf.sprintf "cached stage %s" stage)

let cached_oracle (name, alg) =
  QCheck.Test.make
    ~name:(Printf.sprintf "caching ladder == reference (%s)" name)
    ~count:300 arb_case
    (fun (pspec, cspec) ->
      let policy = policy_of_spec alg pspec in
      let ctx = ctx_of_spec cspec in
      let reference = Policy.evaluate ctx policy in
      let compiled = Compiled.evaluate ctx (Compiled.compile (Policy.Inline_policy policy)) in
      if not (result_equal reference compiled) then
        fail_diverged ~alg:name ~expected:reference ~got:compiled "reference" "compiled"
      else
        List.for_all
          (check_ladder_stage ~alg:name ~reference)
          (cached_ladder_evaluate (Policy.Inline_policy policy) cspec))

let algorithms =
  [
    ("deny-overrides", Combine.Deny_overrides);
    ("permit-overrides", Combine.Permit_overrides);
    ("first-applicable", Combine.First_applicable);
    ("only-one-applicable", Combine.Only_one_applicable);
    ("ordered-deny-overrides", Combine.Ordered_deny_overrides);
    ("ordered-permit-overrides", Combine.Ordered_permit_overrides);
  ]

(* --- oracle 4: delegation-augmented policy sets ------------------------- *)

(* A random delegation registry (grants between three issuers, some
   revoked) filters a random policy set; the surviving set must evaluate
   identically in-process, through the sharded tier, and through the
   cached ladder.  This is the administrative path the earlier oracles
   never touched: children dropped by [filter_authorized], possibly-empty
   sets, and issuer-targeted children must not change under wire
   encoding, sharding or caching. *)

let issuers = [| "root"; "alpha"; "beta" |]

type grant_spec = { from_code : int; to_code : int; scope_code : int; flag_code : int }
type child_spec = { issuer_code : int; child_resource_code : int; child_effect_code : int }

let scope_of_code c = if c = 0 then "" else resources.((c - 1) mod Array.length resources)

let delegation_of_specs specs =
  let deleg = Delegation.create ~roots:[ "root" ] in
  let granted =
    List.filter_map
      (fun g ->
        match
          Delegation.grant deleg
            ~can_redelegate:(g.flag_code land 1 = 1)
            ~delegator:issuers.(g.from_code mod Array.length issuers)
            ~delegate:issuers.(g.to_code mod Array.length issuers)
            ~scope:(scope_of_code g.scope_code) ~now:0.0 ~expires:100.0 ()
        with
        | Ok recorded -> Some (recorded, g.flag_code land 2 = 2)
        | Error _ -> None)
      specs
  in
  List.iter
    (fun ((recorded : Delegation.grant), revoked) ->
      if revoked then ignore (Delegation.revoke deleg ~grant_id:recorded.Delegation.id))
    granted;
  deleg

let child_of_spec i c =
  let target =
    if c.child_resource_code = 0 then Target.any
    else Target.(any |> resource_is "resource-id" resources.((c.child_resource_code - 1) mod Array.length resources))
  in
  Policy.Inline_policy
    (Policy.make
       ~id:(Printf.sprintf "child%d" i)
       ~issuer:issuers.(c.issuer_code mod Array.length issuers)
       ~target
       [ (if c.child_effect_code = 0 then Rule.permit "p" else Rule.deny "d") ])

let arb_delegation_case =
  let open QCheck in
  let arb_grant =
    map
      ~rev:(fun g -> (g.from_code, g.to_code, g.scope_code, g.flag_code))
      (fun (f, t, s, fl) -> { from_code = f; to_code = t; scope_code = s; flag_code = fl })
      (quad (int_bound 2) (int_bound 2) (int_bound 3) (int_bound 3))
  in
  let arb_child =
    map
      ~rev:(fun c -> (c.issuer_code, c.child_resource_code, c.child_effect_code))
      (fun (i, r, e) -> { issuer_code = i; child_resource_code = r; child_effect_code = e })
      (triple (int_bound 2) (int_bound 3) (int_bound 1))
  in
  let arb_ctx =
    map
      ~rev:(fun s -> (s.role_code, s.resource_code, s.action_code))
      (fun (r, rs, a) -> { role_code = r; resource_code = rs; action_code = a })
      (triple (int_bound (Array.length roles)) (int_bound 2) (int_bound 1))
  in
  triple (list_of_size (Gen.int_bound 4) arb_grant) (list_of_size (Gen.int_bound 4) arb_child) arb_ctx

let delegation_filtered_root alg (grant_specs, child_specs, _) =
  let deleg = delegation_of_specs grant_specs in
  let set =
    Policy.make_set ~policy_combining:alg ~id:"deleg-set" (List.mapi child_of_spec child_specs)
  in
  let filtered, _dropped = Delegation.filter_authorized deleg ~now:1.0 set in
  Policy.Inline_set filtered

let delegation_tier_oracle (name, alg) =
  QCheck.Test.make
    ~name:(Printf.sprintf "delegation-filtered set: tier/compiled == reference (%s)" name)
    ~count:300 arb_delegation_case
    (fun case ->
      let _, _, cspec = case in
      let root = delegation_filtered_root alg case in
      let ctx = ctx_of_spec cspec in
      let reference = Policy.evaluate_child ctx root in
      (* Possibly-empty filtered sets are exactly the shape the compiled
         set walker has to get right; the interpreted tier covers the
         uncompiled wire path alongside. *)
      let compiled = Compiled.evaluate ctx (Compiled.compile root) in
      if not (result_equal reference compiled) then
        fail_diverged ~alg:name ~expected:reference ~got:compiled "reference" "compiled"
      else
        match tier_evaluate root ctx with
        | None -> QCheck.Test.fail_reportf "[%s] tier never answered (%s)" name (seed_hint ())
        | Some (Error e) ->
          QCheck.Test.fail_reportf "[%s] tier failed closed: %s (%s)" name e (seed_hint ())
        | Some (Ok tiered) ->
          if result_equal reference tiered then true
          else fail_diverged ~alg:name ~expected:reference ~got:tiered "reference" "tier")

let delegation_cached_oracle (name, alg) =
  QCheck.Test.make
    ~name:(Printf.sprintf "delegation-filtered set: caching ladder == reference (%s)" name)
    ~count:100 arb_delegation_case
    (fun case ->
      let _, _, cspec = case in
      let root = delegation_filtered_root alg case in
      let reference = Policy.evaluate_child (ctx_of_spec cspec) root in
      List.for_all
        (check_ladder_stage ~alg:name ~reference)
        (cached_ladder_evaluate root cspec))

(* --- oracle 5: negotiation-gated requests ------------------------------- *)

(* Trust negotiation decides whether the requester's role credential is
   released at all; the authorisation request then carries the role only
   on success.  The oracle checks the composition end to end: the
   negotiation outcome matches [satisfied] over what was disclosed, and
   the resulting (gated) context evaluates identically in-process and
   through the sharded tier. *)

type nego_spec = { depth : int; broken : bool }

let nego_parties spec =
  let cred i = Printf.sprintf "client-cred%d" i in
  let srv i = Printf.sprintf "server-cred%d" i in
  let depth = spec.depth mod 4 in
  let client_creds =
    List.init (depth + 1) (fun i ->
        if i = 0 then Negotiation.unprotected (cred 0)
        else Negotiation.protected_by (cred i) [ srv (i - 1) ])
  in
  let server_creds =
    List.init depth (fun i ->
        (* A broken chain: the server's deepest credential demands a
           client credential that does not exist. *)
        if spec.broken && i = depth - 1 then Negotiation.protected_by (srv i) [ "no-such-cred" ]
        else Negotiation.protected_by (srv i) [ cred i ])
  in
  let target =
    if spec.broken && depth = 0 then [ [ "no-such-cred" ] ] else [ [ cred depth ] ]
  in
  ( { Negotiation.party_name = "client"; credentials = client_creds },
    { Negotiation.party_name = "server"; credentials = server_creds },
    target )

let arb_negotiation_case =
  let open QCheck in
  let arb_rule =
    map
      ~rev:(fun s -> (s.effect_code, s.target_code, s.condition_code, s.obligation_code))
      (fun (e, t, c, o) -> { effect_code = e; target_code = t; condition_code = c; obligation_code = o })
      (quad (int_bound 1) (int_bound target_code_max) (int_bound condition_code_max) (int_bound 2))
  in
  let arb_nego =
    map
      ~rev:(fun s -> (s.depth, s.broken))
      (fun (d, b) -> { depth = d; broken = b })
      (pair (int_bound 3) bool)
  in
  triple arb_nego (pair (list_of_size (Gen.int_bound 6) arb_rule) (int_bound 1))
    (triple (int_bound (Array.length roles)) (int_bound 2) (int_bound 1))

let negotiation_oracle (name, alg) =
  QCheck.Test.make
    ~name:(Printf.sprintf "negotiation-gated request: tier/compiled == reference (%s)" name)
    ~count:300 arb_negotiation_case
    (fun (nspec, pspec, (role_code, resource_code, action_code)) ->
      let client, server, target = nego_parties nspec in
      let outcome = Negotiation.negotiate ~client ~server ~target () in
      (* Internal consistency of the negotiation itself. *)
      if outcome.Negotiation.success <> Negotiation.satisfied target outcome.Negotiation.disclosed_by_client
      then QCheck.Test.fail_reportf "negotiation outcome disagrees with satisfied";
      if nspec.broken && outcome.Negotiation.success then
        QCheck.Test.fail_reportf "broken credential chain negotiated successfully";
      if (not nspec.broken) && not outcome.Negotiation.success then
        QCheck.Test.fail_reportf "intact chain of depth %d failed" (nspec.depth mod 4);
      (* The gate: the role attribute reaches the authz request only when
         negotiation released it. *)
      let cspec =
        {
          role_code = (if outcome.Negotiation.success then 1 + (role_code mod Array.length roles) else 0);
          resource_code;
          action_code;
        }
      in
      let policy = policy_of_spec alg pspec in
      let ctx = ctx_of_spec cspec in
      let reference = Policy.evaluate ctx policy in
      let compiled = Compiled.evaluate ctx (Compiled.compile (Policy.Inline_policy policy)) in
      if not (result_equal reference compiled) then
        fail_diverged ~alg:name ~expected:reference ~got:compiled "reference" "compiled"
      else
        match tier_evaluate ~compiled:true (Policy.Inline_policy policy) ctx with
        | None -> QCheck.Test.fail_reportf "[%s] tier never answered (%s)" name (seed_hint ())
        | Some (Error e) ->
          QCheck.Test.fail_reportf "[%s] tier failed closed: %s (%s)" name e (seed_hint ())
        | Some (Ok tiered) ->
          if result_equal reference tiered then true
          else fail_diverged ~alg:name ~expected:reference ~got:tiered "reference" "compiled tier")

(* --- oracle 6: key-scheme differential --------------------------------- *)

(* The interned serving path (packed integer request keys) against the
   legacy sorted-string + SHA-256 scheme it replaced: the whole cached
   ladder replayed under both key schemes must serve every stage from
   the same rung with the same decision and obligations, and the packed
   run must still match the reference evaluation.  This is the proof
   obligation of the key swap — a key scheme can only change *which*
   entry a cache lookup finds, so any divergence here is a collision or
   a canonicalisation bug, not a policy question. *)

let with_scheme scheme f =
  let saved = Decision_cache.key_scheme () in
  Decision_cache.set_key_scheme scheme;
  Fun.protect ~finally:(fun () -> Decision_cache.set_key_scheme saved) f

let schemes_agree ~alg:name packed sha =
  List.for_all2
    (fun (stage, _, _, p_ans) (_, _, _, s_ans) ->
      match (p_ans, s_ans) with
      | None, None -> true
      | Some (pr, (pp : Provenance.t)), Some (sr, (sp : Provenance.t)) ->
        if pp.Provenance.stage <> sp.Provenance.stage then
          QCheck.Test.fail_reportf "[%s] stage %s rung differs across key schemes: %s vs %s (%s)"
            name stage
            (Provenance.stage_name pp.Provenance.stage)
            (Provenance.stage_name sp.Provenance.stage)
            (seed_hint ())
        else if not (result_equal pr sr) then
          fail_diverged ~alg:name ~expected:sr ~got:pr
            (Printf.sprintf "sha stage %s" stage)
            (Printf.sprintf "packed stage %s" stage)
        else true
      | _ ->
        QCheck.Test.fail_reportf "[%s] stage %s answered under one key scheme only (%s)" name
          stage (seed_hint ()))
    packed sha

let scheme_oracle (name, alg) =
  QCheck.Test.make
    ~name:(Printf.sprintf "packed keys: ladder == sha ladder == reference (%s)" name)
    ~count:100 arb_case
    (fun (pspec, cspec) ->
      let policy = policy_of_spec alg pspec in
      let reference = Policy.evaluate (ctx_of_spec cspec) policy in
      let root = Policy.Inline_policy policy in
      let packed =
        with_scheme Decision_cache.Packed (fun () -> cached_ladder_evaluate root cspec)
      in
      let sha =
        with_scheme Decision_cache.Sha_hex (fun () -> cached_ladder_evaluate root cspec)
      in
      List.for_all (check_ladder_stage ~alg:name ~reference) packed
      && schemes_agree ~alg:name packed sha)

let delegation_scheme_oracle (name, alg) =
  QCheck.Test.make
    ~name:(Printf.sprintf "packed keys: delegation ladder == sha ladder (%s)" name)
    ~count:60 arb_delegation_case
    (fun case ->
      let _, _, cspec = case in
      let root = delegation_filtered_root alg case in
      let reference = Policy.evaluate_child (ctx_of_spec cspec) root in
      let packed =
        with_scheme Decision_cache.Packed (fun () -> cached_ladder_evaluate root cspec)
      in
      let sha =
        with_scheme Decision_cache.Sha_hex (fun () -> cached_ladder_evaluate root cspec)
      in
      List.for_all (check_ladder_stage ~alg:name ~reference) packed
      && schemes_agree ~alg:name packed sha)

(* --- oracle 7: churn corpus (targeted cache invalidation) ---------------- *)

(* Interleaved publish/decide: a random sequence of policy generations
   decided through an L1 decision cache under targeted region
   invalidation (Delta.between over consecutive roots), against a
   full-flush arm and the uncached reference evaluation.  No request is
   in flight across a publish, so all three must agree at every step —
   any divergence means the region under-approximated the publish's
   impact and a stale entry survived.  The corpus runs under both key
   schemes: Sha_hex keys are undecodable, so targeted invalidation
   degrades to per-entry flushes there and soundness must survive the
   degradation. *)

module Delta = Dacs_policy.Delta

(* The full enumerable request population of the spec vocabulary
   (including the role-absent contexts) — decided after every publish,
   so every cached entry is re-audited against the new policy. *)
let churn_ctxs =
  List.init 24 (fun i ->
      ctx_of_spec { role_code = i / 6; resource_code = i / 2 mod 3; action_code = i mod 2 })

let churn_corpus ~alg ~name gens =
  let roots = List.map (fun pspec -> Policy.Inline_policy (policy_of_spec alg pspec)) gens in
  let targeted = Decision_cache.create ~ttl:3600.0 () in
  let full = Decision_cache.create ~ttl:3600.0 () in
  let decide_cached cache root ctx =
    let key = Decision_cache.request_key ctx in
    match Decision_cache.get cache ~now:0.0 ~key with
    | Some r -> r
    | None ->
      let r = Policy.evaluate_child ctx root in
      Decision_cache.put cache ~now:0.0 ~key r;
      r
  in
  let prev = ref None in
  List.iteri
    (fun gen root ->
      let region = Delta.between !prev (Some root) in
      ignore (Decision_cache.invalidate_region targeted region);
      Decision_cache.invalidate_all full;
      prev := Some root;
      List.iter
        (fun ctx ->
          let reference = Policy.evaluate_child ctx root in
          let t = decide_cached targeted root ctx in
          let f = decide_cached full root ctx in
          if not (result_equal reference t) then
            QCheck.Test.fail_reportf
              "[%s] generation %d: targeted-invalidation cache served %s, reference %s — region \
               %s under-approximated (%s)"
              name gen (show_result t) (show_result reference) (Delta.to_string region)
              (seed_hint ())
          else if not (result_equal reference f) then
            fail_diverged ~alg:name ~expected:reference ~got:f "reference" "full-flush cache")
        churn_ctxs)
    roots;
  true

let arb_churn =
  let open QCheck in
  let arb_rule =
    map
      ~rev:(fun s -> (s.effect_code, s.target_code, s.condition_code, s.obligation_code))
      (fun (e, t, c, o) ->
        { effect_code = e; target_code = t; condition_code = c; obligation_code = o })
      (quad (int_bound 1) (int_bound target_code_max) (int_bound condition_code_max) (int_bound 2))
  in
  list_of_size
    (Gen.int_bound 4)
    (pair (list_of_size (Gen.int_bound 6) arb_rule) (int_bound 1))

let churn_oracle (name, alg) =
  QCheck.Test.make
    ~name:(Printf.sprintf "churn corpus: targeted == full-flush == reference (%s)" name)
    ~count:150 arb_churn
    (fun gens ->
      with_scheme Decision_cache.Packed (fun () -> churn_corpus ~alg ~name gens)
      && with_scheme Decision_cache.Sha_hex (fun () -> churn_corpus ~alg ~name gens))

(* --- directed regressions: empty rule lists ----------------------------- *)

(* Every combining algorithm folded over zero children must agree across
   all evaluators: NotApplicable, no obligations — even when the policy
   itself carries obligations (they attach only to Permit/Deny).  The
   generator reaches empty rule lists rarely enough that a divergence
   here deserves a named, deterministic test per algorithm. *)
let empty_rules_cases =
  List.map
    (fun (name, alg) ->
      Alcotest.test_case (Printf.sprintf "empty rule list (%s)" name) `Quick (fun () ->
          let policy = policy_of_spec alg ([], 1) in
          let ctx = ctx_of_spec { role_code = 1; resource_code = 0; action_code = 0 } in
          let reference = Policy.evaluate ctx policy in
          Alcotest.(check bool)
            "reference is NotApplicable"
            true
            (Decision.equal_decision reference.Decision.decision Decision.Not_applicable
            && reference.Decision.obligations = []);
          let indexed = Index.evaluate ctx (Index.build policy) in
          let compiled = Compiled.evaluate ctx (Compiled.compile (Policy.Inline_policy policy)) in
          Alcotest.(check bool)
            (Printf.sprintf "[%s] indexed == reference" name)
            true (result_equal reference indexed);
          Alcotest.(check bool)
            (Printf.sprintf "[%s] compiled == reference" name)
            true (result_equal reference compiled);
          match tier_evaluate ~compiled:true (Policy.Inline_policy policy) ctx with
          | Some (Ok tiered) ->
            Alcotest.(check bool)
              (Printf.sprintf "[%s] tier == reference" name)
              true (result_equal reference tiered)
          | Some (Error e) -> Alcotest.failf "[%s] tier failed closed: %s" name e
          | None -> Alcotest.failf "[%s] tier never answered" name))
    algorithms

let () =
  Alcotest.run "dacs_oracle"
    [
      ("empty-rules-directed", empty_rules_cases);
      ("index-differential", List.map (fun a -> QCheck_alcotest.to_alcotest (index_oracle a)) algorithms);
      ("tier-differential", List.map (fun a -> QCheck_alcotest.to_alcotest (tier_oracle a)) algorithms);
      ( "cached-ladder-differential",
        List.map (fun a -> QCheck_alcotest.to_alcotest (cached_oracle a)) algorithms );
      ( "delegation-differential",
        List.map (fun a -> QCheck_alcotest.to_alcotest (delegation_tier_oracle a)) algorithms
        @ List.map (fun a -> QCheck_alcotest.to_alcotest (delegation_cached_oracle a)) algorithms );
      ( "negotiation-differential",
        List.map (fun a -> QCheck_alcotest.to_alcotest (negotiation_oracle a)) algorithms );
      ( "key-scheme-differential",
        List.map (fun a -> QCheck_alcotest.to_alcotest (scheme_oracle a)) algorithms
        @ List.map (fun a -> QCheck_alcotest.to_alcotest (delegation_scheme_oracle a)) algorithms
      );
      ( "churn-differential",
        List.map (fun a -> QCheck_alcotest.to_alcotest (churn_oracle a)) algorithms );
    ]
