(* Tests for dacs_xml: parser, printer, canonical form, path queries. *)

module Xml = Dacs_xml.Xml
module Xml_path = Dacs_xml.Xml_path

let check = Alcotest.check
let string_ = Alcotest.string
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let xml_testable = Alcotest.testable (fun fmt t -> Format.pp_print_string fmt (Xml.to_string t)) Xml.equal

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- construction and accessors ------------------------------------- *)

let test_element_basics () =
  let e = Xml.element "Policy" ~attrs:[ ("PolicyId", "p1") ] ~children:[ Xml.text "hi" ] in
  check string_ "tag" "Policy" (Xml.tag e);
  check (Alcotest.option string_) "attr" (Some "p1") (Xml.attr e "PolicyId");
  check (Alcotest.option string_) "missing attr" None (Xml.attr e "nope");
  check string_ "text content" "hi" (Xml.text_content e)

let test_local_name_prefix () =
  check string_ "local" "Assertion" (Xml.local_name "saml:Assertion");
  check string_ "no prefix" "Policy" (Xml.local_name "Policy");
  check (Alcotest.option string_) "prefix" (Some "saml") (Xml.prefix "saml:Assertion");
  check (Alcotest.option string_) "no prefix" None (Xml.prefix "Policy")

let test_set_attr () =
  let e = Xml.element "A" ~attrs:[ ("x", "1") ] in
  let e' = Xml.set_attr e "x" "2" in
  check (Alcotest.option string_) "updated" (Some "2") (Xml.attr e' "x");
  let e'' = Xml.set_attr e "y" "3" in
  check (Alcotest.option string_) "added" (Some "3") (Xml.attr e'' "y");
  check (Alcotest.option string_) "original untouched" (Some "1") (Xml.attr e "x")

let test_find_children () =
  let doc =
    Xml.element "Root"
      ~children:
        [
          Xml.element "xacml:Rule" ~attrs:[ ("RuleId", "r1") ];
          Xml.text "noise";
          Xml.element "Rule" ~attrs:[ ("RuleId", "r2") ];
          Xml.element "Other";
        ]
  in
  check int_ "find_children matches on local name" 2 (List.length (Xml.find_children doc "Rule"));
  match Xml.find_child doc "Rule" with
  | Some r -> check (Alcotest.option string_) "first" (Some "r1") (Xml.attr r "RuleId")
  | None -> Alcotest.fail "expected a Rule child"

(* --- escaping -------------------------------------------------------- *)

let test_escape () =
  check string_ "all specials" "&amp;&lt;&gt;&quot;&apos;" (Xml.escape "&<>\"'");
  check string_ "plain" "hello" (Xml.escape "hello")

let test_escape_roundtrip_via_parse () =
  let nasty = "a & b < c > d \"quoted\" 'single'" in
  let doc = Xml.element "T" ~attrs:[ ("v", nasty) ] ~children:[ Xml.text nasty ] in
  let parsed = Xml.of_string (Xml.to_string doc) in
  check (Alcotest.option string_) "attr roundtrip" (Some nasty) (Xml.attr parsed "v");
  check string_ "text roundtrip" nasty (Xml.text_content parsed)

(* --- parsing --------------------------------------------------------- *)

let test_parse_simple () =
  let doc = Xml.of_string "<a x=\"1\"><b>hi</b><c/></a>" in
  check string_ "root" "a" (Xml.tag doc);
  check int_ "children" 2 (List.length (Xml.children doc));
  check (Alcotest.option string_) "b text" (Some "hi")
    (Option.map Xml.text_content (Xml.find_child doc "b"))

let test_parse_prolog_doctype_comments () =
  let src =
    "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!DOCTYPE note>\n<!-- a comment -->\n<note><!-- inner -->body</note>\n"
  in
  let doc = Xml.of_string src in
  check string_ "root" "note" (Xml.tag doc);
  check string_ "text" "body" (Xml.text_content doc)

let test_parse_cdata () =
  let doc = Xml.of_string "<d><![CDATA[<not>&parsed;]]></d>" in
  check string_ "cdata" "<not>&parsed;" (Xml.text_content doc)

let test_parse_entities () =
  let doc = Xml.of_string "<d>&lt;&gt;&amp;&quot;&apos;&#65;&#x42;</d>" in
  check string_ "entities" "<>&\"'AB" (Xml.text_content doc)

let test_parse_numeric_utf8 () =
  (* U+00E9 (é) is two UTF-8 bytes; U+4E2D is three. *)
  let doc = Xml.of_string "<d>&#233;&#x4E2D;</d>" in
  check string_ "utf8" "\xC3\xA9\xE4\xB8\xAD" (Xml.text_content doc)

let test_parse_errors () =
  let bad src =
    match Xml.of_string_opt src with
    | None -> ()
    | Some _ -> Alcotest.fail (Printf.sprintf "expected a parse error for %S" src)
  in
  bad "";
  bad "<a>";
  bad "<a></b>";
  bad "<a x=1></a>";
  bad "<a x=\"1\" x=\"2\"></a>";
  bad "<a>&bogus;</a>";
  bad "<a></a><b></b>";
  bad "text only"

let test_parse_error_position () =
  match Xml.of_string_opt "<a>\n<b></c>\n</a>" with
  | Some _ -> Alcotest.fail "expected failure"
  | None -> (
    try ignore (Xml.of_string "<a>\n<b></c>\n</a>") with
    | Xml.Parse_error { line; _ } -> check int_ "line" 2 line
    | e -> raise e)

let test_mismatched_tag_message () =
  try
    ignore (Xml.of_string "<a></b>");
    Alcotest.fail "expected failure"
  with e -> (
    match Xml.parse_error_to_string e with
    | Some msg -> check bool_ "mentions tags" true (contains msg "</b>")
    | None -> Alcotest.fail "expected a Parse_error")

(* --- canonical form --------------------------------------------------- *)

let test_canonical_sorts_attrs () =
  let a = Xml.of_string "<a z=\"1\" b=\"2\" m=\"3\"/>" in
  check string_ "sorted" "<a b=\"2\" m=\"3\" z=\"1\"/>" (Xml.canonical_string a)

let test_canonical_drops_blank_text () =
  let a = Xml.of_string "<a>\n  <b/>\n  <c/>\n</a>" in
  check string_ "no blanks" "<a><b/><c/></a>" (Xml.canonical_string a)

let test_canonical_merges_text () =
  let a = Xml.element "a" ~children:[ Xml.text "x"; Xml.text "y" ] in
  check string_ "merged" "<a>xy</a>" (Xml.canonical_string a)

let test_canonical_idempotent () =
  let a = Xml.of_string "<a z=\"1\" b=\"2\">  <c>t</c>  </a>" in
  check xml_testable "idempotent" (Xml.canonical a) (Xml.canonical (Xml.canonical a))

let test_equal_modulo_whitespace () =
  let a = Xml.of_string "<a x=\"1\" y=\"2\"><b>t</b></a>" in
  let b = Xml.of_string "<a y=\"2\" x=\"1\">\n  <b>t</b>\n</a>" in
  check bool_ "equal" true (Xml.equal a b)

(* --- size / depth ------------------------------------------------------ *)

let test_size_depth () =
  let a = Xml.of_string "<a><b><c/></b><d/>x</a>" in
  check int_ "size" 5 (Xml.size a);
  check int_ "depth" 3 (Xml.depth a);
  check int_ "leaf depth" 1 (Xml.depth (Xml.element "x"))

(* --- pretty printing ---------------------------------------------------- *)

let test_pretty_parses_back () =
  let a = Xml.of_string "<a x=\"1\"><b>text</b><c><d/></c></a>" in
  let pretty = Xml.to_pretty_string a in
  check bool_ "pretty equal" true (Xml.equal a (Xml.of_string pretty))

(* --- paths -------------------------------------------------------------- *)

let sample =
  Xml.of_string
    "<PolicySet><Policy PolicyId=\"p1\"><Rule RuleId=\"r1\" Effect=\"Permit\"/><Rule RuleId=\"r2\" Effect=\"Deny\"/></Policy><Policy PolicyId=\"p2\"><Rule RuleId=\"r3\" Effect=\"Permit\"/></Policy></PolicySet>"

let test_path_select () =
  check int_ "all rules" 3 (List.length (Xml_path.select sample "Policy/Rule"));
  check int_ "wildcard" 3 (List.length (Xml_path.select sample "*/Rule"));
  check int_ "policies" 2 (List.length (Xml_path.select sample "Policy"))

let test_path_attr_pred () =
  let permits = Xml_path.select sample "Policy/Rule[@Effect=Permit]" in
  check int_ "permit rules" 2 (List.length permits);
  check (Alcotest.option string_) "by id" (Some "r2")
    (Xml_path.select_attr sample "Policy/Rule[@Effect=Deny]" "RuleId")

let test_path_quoted_pred () =
  check (Alcotest.option string_) "quoted value" (Some "r2")
    (Xml_path.select_attr sample "Policy/Rule[@Effect='Deny']" "RuleId")

let test_path_index () =
  check (Alcotest.option string_) "second policy" (Some "p2")
    (Xml_path.select_attr sample "Policy[2]" "PolicyId");
  check int_ "out of range" 0 (List.length (Xml_path.select sample "Policy[9]"))

let test_path_text () =
  let doc = Xml.of_string "<a><b>hello</b></a>" in
  check (Alcotest.option string_) "text" (Some "hello") (Xml_path.select_text doc "b")

let test_path_exists () =
  check bool_ "exists" true (Xml_path.exists sample "Policy/Rule");
  check bool_ "not exists" false (Xml_path.exists sample "Policy/Nope")

let test_path_errors () =
  let bad p =
    try
      ignore (Xml_path.select sample p);
      Alcotest.fail (Printf.sprintf "expected Bad_path for %S" p)
    with Xml_path.Bad_path _ -> ()
  in
  bad "";
  bad "a//b";
  bad "a[b]";
  bad "a[@x]";
  bad "a[0]"

(* --- property tests -------------------------------------------------------- *)

let gen_xml =
  let open QCheck.Gen in
  let tag_gen = oneofl [ "a"; "b"; "c"; "Policy"; "Rule"; "ns:Elt" ] in
  let text_gen = map (fun s -> Xml.text (String.concat "" [ "t"; s ])) (string_size ~gen:printable (0 -- 8)) in
  let attr_gen = pair (oneofl [ "x"; "y"; "id" ]) (string_size ~gen:printable (0 -- 6)) in
  let rec node depth =
    if depth = 0 then text_gen
    else
      frequency
        [
          (2, text_gen);
          ( 3,
            tag_gen >>= fun tag ->
            list_size (0 -- 3) (pair (oneofl [ "x"; "y"; "id" ]) (string_size ~gen:printable (0 -- 6)))
            >>= fun raw_attrs ->
            let attrs = List.sort_uniq (fun (a, _) (b, _) -> compare a b) raw_attrs in
            list_size (0 -- 3) (node (depth - 1)) >>= fun children ->
            return (Xml.element tag ~attrs ~children) );
        ]
  in
  ignore attr_gen;
  QCheck.make
    ~print:(fun t -> Xml.to_string t)
    ( tag_gen >>= fun tag ->
      list_size (0 -- 4) (node 3) >>= fun children ->
      return (Xml.element tag ~children) )

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip (canonical)" ~count:200 gen_xml (fun doc ->
      let reparsed = Xml.of_string (Xml.to_string doc) in
      Xml.equal doc reparsed)

let prop_canonical_idempotent =
  QCheck.Test.make ~name:"canonical is idempotent" ~count:200 gen_xml (fun doc ->
      Xml.canonical (Xml.canonical doc) = Xml.canonical doc)

let prop_canonical_stable_string =
  QCheck.Test.make ~name:"canonical string parses to equal doc" ~count:200 gen_xml (fun doc ->
      Xml.equal doc (Xml.of_string (Xml.canonical_string doc)))

let prop_parser_total =
  (* Robustness: the parser never raises anything but Parse_error, i.e.
     of_string_opt is total over arbitrary bytes. *)
  QCheck.Test.make ~name:"parser is total on random bytes" ~count:1000 QCheck.string (fun s ->
      match Xml.of_string_opt s with
      | Some _ | None -> true)

let prop_parser_total_xmlish =
  (* The same, over strings biased towards XML-ish fragments. *)
  let fragment =
    QCheck.Gen.oneofl
      [ "<"; ">"; "/>"; "</a>"; "<a"; "a=\""; "\""; "&"; "&amp;"; "&#"; ";"; "<![CDATA["; "]]>";
        "<!--"; "-->"; "<?"; "?>"; "x"; " "; "<a>"; "<!DOCTYPE" ]
  in
  QCheck.Test.make ~name:"parser is total on XML-ish fragments" ~count:1000
    (QCheck.make
       ~print:(fun l -> String.concat "" l)
       QCheck.Gen.(list_size (0 -- 20) fragment))
    (fun frags ->
      match Xml.of_string_opt (String.concat "" frags) with
      | Some _ | None -> true)

let props = List.map QCheck_alcotest.to_alcotest
  [ prop_print_parse_roundtrip; prop_canonical_idempotent; prop_canonical_stable_string;
    prop_parser_total; prop_parser_total_xmlish ]

let suite =
  [
    Alcotest.test_case "element basics" `Quick test_element_basics;
    Alcotest.test_case "local name / prefix" `Quick test_local_name_prefix;
    Alcotest.test_case "set_attr" `Quick test_set_attr;
    Alcotest.test_case "find_children" `Quick test_find_children;
    Alcotest.test_case "escape" `Quick test_escape;
    Alcotest.test_case "escape roundtrip" `Quick test_escape_roundtrip_via_parse;
    Alcotest.test_case "parse simple" `Quick test_parse_simple;
    Alcotest.test_case "parse prolog/doctype/comments" `Quick test_parse_prolog_doctype_comments;
    Alcotest.test_case "parse CDATA" `Quick test_parse_cdata;
    Alcotest.test_case "parse entities" `Quick test_parse_entities;
    Alcotest.test_case "numeric refs to UTF-8" `Quick test_parse_numeric_utf8;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "error position" `Quick test_parse_error_position;
    Alcotest.test_case "mismatched tag message" `Quick test_mismatched_tag_message;
    Alcotest.test_case "canonical sorts attributes" `Quick test_canonical_sorts_attrs;
    Alcotest.test_case "canonical drops blank text" `Quick test_canonical_drops_blank_text;
    Alcotest.test_case "canonical merges text" `Quick test_canonical_merges_text;
    Alcotest.test_case "canonical idempotent" `Quick test_canonical_idempotent;
    Alcotest.test_case "equality modulo whitespace" `Quick test_equal_modulo_whitespace;
    Alcotest.test_case "size and depth" `Quick test_size_depth;
    Alcotest.test_case "pretty print parses back" `Quick test_pretty_parses_back;
    Alcotest.test_case "path select" `Quick test_path_select;
    Alcotest.test_case "path attribute predicate" `Quick test_path_attr_pred;
    Alcotest.test_case "path quoted predicate" `Quick test_path_quoted_pred;
    Alcotest.test_case "path index" `Quick test_path_index;
    Alcotest.test_case "path text" `Quick test_path_text;
    Alcotest.test_case "path exists" `Quick test_path_exists;
    Alcotest.test_case "path errors" `Quick test_path_errors;
  ]
  @ props

let () = Alcotest.run "dacs_xml" [ ("xml", suite) ]
