lib/core/meta_policy.mli: Audit Dacs_policy
