module Policy = Dacs_policy.Policy
module Target = Dacs_policy.Target
module Value = Dacs_policy.Value

type grant = {
  id : string;
  delegator : string;
  delegate : string;
  scope : string;
  can_redelegate : bool;
  expires : float;
}

type t = {
  root_authorities : string list;
  mutable grant_list : grant list;  (* newest first *)
  mutable next_id : int;
}

let create ~roots = { root_authorities = roots; grant_list = []; next_id = 0 }

let roots t = t.root_authorities

let grants t = List.rev t.grant_list

let scope_covers scope resource =
  let n = String.length scope in
  n = 0 || (String.length resource >= n && String.sub resource 0 n = scope)

(* BFS from the roots: which authorities hold (re-delegable) authority
   over [resource] at [now]? *)
let chain_for t ~issuer ~resource ~now =
  if List.mem issuer t.root_authorities then Some []
  else begin
    (* frontier entries: (authority, chain from root, must the next link
       come from an authority whose grant allowed re-delegation) *)
    let live g = now < g.expires && scope_covers g.scope resource in
    let rec bfs visited frontier =
      match frontier with
      | [] -> None
      | (authority, chain) :: rest ->
        let outgoing =
          List.filter (fun g -> g.delegator = authority && live g) t.grant_list
        in
        let hit =
          List.find_opt (fun g -> g.delegate = issuer) outgoing
        in
        (match hit with
        | Some g -> Some (List.rev (g :: chain))
        | None ->
          let next =
            List.filter_map
              (fun g ->
                if g.can_redelegate && not (List.mem g.delegate visited) then
                  Some (g.delegate, g :: chain)
                else None)
              outgoing
          in
          bfs (List.map fst next @ visited) (rest @ next))
    in
    bfs t.root_authorities (List.map (fun r -> (r, [])) t.root_authorities)
  end

let authority_for t ~issuer ~resource ~now = chain_for t ~issuer ~resource ~now <> None

(* Can [delegator] hand out authority over [scope] at [now]?  Roots always
   can; others must hold a re-delegable chain covering the scope (we check
   with the scope itself as the resource, which is the most permissive
   resource the grant could cover). *)
let may_delegate t ~delegator ~scope ~now =
  List.mem delegator t.root_authorities
  ||
  match chain_for t ~issuer:delegator ~resource:scope ~now with
  | None -> false
  | Some chain -> List.for_all (fun g -> g.can_redelegate) chain

let grant t ?(can_redelegate = false) ~delegator ~delegate ~scope ~now ~expires () =
  if not (may_delegate t ~delegator ~scope ~now) then
    Error (Printf.sprintf "%s holds no delegable authority over scope %S" delegator scope)
  else begin
    let g =
      {
        id = Printf.sprintf "grant-%d" t.next_id;
        delegator;
        delegate;
        scope;
        can_redelegate;
        expires;
      }
    in
    t.next_id <- t.next_id + 1;
    t.grant_list <- g :: t.grant_list;
    Ok g
  end

let revoke t ~grant_id =
  let existed = List.exists (fun g -> g.id = grant_id) t.grant_list in
  t.grant_list <- List.filter (fun g -> g.id <> grant_id) t.grant_list;
  existed

(* Resources a policy child claims authority over: the string-equal
   resource-id matches in its target.  None = no resource constraint. *)
let claimed_resources child =
  let target =
    match child with
    | Policy.Inline_policy p -> Some p.Policy.target
    | Policy.Inline_set s -> Some s.Policy.set_target
    | Policy.Policy_ref _ -> None
  in
  match target with
  | None -> Some []
  | Some target ->
    let resources =
      List.concat_map
        (fun clause ->
          List.filter_map
            (fun m ->
              if m.Target.attribute_id = "resource-id" then
                match m.Target.value with
                | Value.String s -> Some s
                | _ -> None
              else None)
            clause)
        target.Target.resources
    in
    if resources = [] then None else Some resources

let child_issuer = function
  | Policy.Inline_policy p -> Some p.Policy.issuer
  | Policy.Inline_set _ | Policy.Policy_ref _ -> None

let filter_authorized t ~now set =
  let keep, dropped =
    List.partition
      (fun child ->
        match child_issuer child with
        | None -> true (* nested sets and references are kept; their
                          contents are checked when resolved *)
        | Some issuer -> (
          match claimed_resources child with
          | None ->
            (* No resource constraint: needs blanket authority. *)
            authority_for t ~issuer ~resource:"" ~now
          | Some resources ->
            List.for_all (fun r -> authority_for t ~issuer ~resource:r ~now) resources))
      set.Policy.children
  in
  ({ set with Policy.children = keep }, List.map Policy.child_id dropped)
