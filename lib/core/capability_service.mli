(** Capability service: the trusted authority of the push model (Fig. 2).

    Clients pre-authenticate here and obtain signed SAML-style assertions
    carrying authorisation-decision statements; PEPs later verify those
    assertions locally.  Mirrors CAS/VOMS: the service pre-screens
    against its own policies, while resource providers keep the final
    say.  Also answers revocation checks. *)

type format =
  | Saml  (** CAS-style SAML assertion encoding *)
  | X509_attribute_cert  (** VOMS-style attribute-certificate encoding *)

type t

val create :
  Dacs_ws.Service.t ->
  node:Dacs_net.Net.node_id ->
  issuer:string ->
  keypair:Dacs_crypto.Rsa.keypair ->
  ?root:Dacs_policy.Policy.child ->
  ?validity:float ->
  ?format:format ->
  unit ->
  t
(** Registers ["capability-request"] and ["revocation-check"].
    [validity] (default 300 s) bounds issued assertions; [format]
    (default {!Saml}) selects the wire encoding — the CAS-vs-VOMS
    distinction of §2.2. *)

val format : t -> format

val node : t -> Dacs_net.Net.node_id
val issuer : t -> string
val public_key : t -> Dacs_crypto.Rsa.public_key

val set_policy : t -> Dacs_policy.Policy.child -> unit

val issue :
  t ->
  subject:(string * Dacs_policy.Value.t) list ->
  pairs:(string * string) list ->
  Dacs_saml.Assertion.t
(** Local issuing path (the service handler uses it too): evaluates each
    (resource, action) pair against the policy and signs an assertion
    with one decision statement per pair. *)

val revoke : t -> assertion_id:string -> unit
val is_revoked : t -> assertion_id:string -> bool

val issued_count : t -> int
(** Reads the registry's [cas_issued_total{node}] counter (which also
    numbers the assertion ids). *)

val revocation_checks_served : t -> int
(** Reads the registry's [cas_revocation_checks_total{node}] counter. *)
