lib/simnet/net.ml: Dacs_crypto Engine Hashtbl List Option Printf String
