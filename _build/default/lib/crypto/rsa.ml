type public_key = { n : Bignum.t; e : Bignum.t }

type private_key = {
  pub : public_key;
  d : Bignum.t;
  p : Bignum.t;
  q : Bignum.t;
}

type keypair = { public : public_key; private_ : private_key }

let e_value = Bignum.of_int 65537

let generate rng ~bits =
  if bits < 64 then invalid_arg "Rsa.generate: need at least 64 bits";
  let half = bits / 2 in
  let rec gen_prime () =
    let p = Prime.generate rng ~bits:half in
    (* e must be invertible modulo p-1. *)
    if Bignum.equal (Bignum.gcd (Bignum.pred p) e_value) Bignum.one then p else gen_prime ()
  in
  let rec gen_pair () =
    let p = gen_prime () in
    let q = gen_prime () in
    if Bignum.equal p q then gen_pair ()
    else begin
      let n = Bignum.mul p q in
      if Bignum.num_bits n <> bits then gen_pair ()
      else begin
        let phi = Bignum.mul (Bignum.pred p) (Bignum.pred q) in
        match Bignum.modinv e_value phi with
        | None -> gen_pair ()
        | Some d ->
          let pub = { n; e = e_value } in
          { public = pub; private_ = { pub; d; p; q } }
      end
    end
  in
  gen_pair ()

let key_bytes pub = (Bignum.num_bits pub.n + 7) / 8

(* --- signatures ----------------------------------------------------- *)

(* EMSA-PKCS1-v1_5 style block: 0x00 0x01 FF..FF 0x00 digest *)
let emsa_encode pub msg =
  let k = key_bytes pub in
  let digest = Sha256.digest msg in
  let pad_len = k - String.length digest - 3 in
  if pad_len < 1 then invalid_arg "Rsa: key too small for a SHA-256 signature";
  "\x00\x01" ^ String.make pad_len '\xFF' ^ "\x00" ^ digest

let sign key msg =
  let block = emsa_encode key.pub msg in
  let m = Bignum.of_bytes_be block in
  let s = Bignum.modpow m key.d key.pub.n in
  Bignum.to_bytes_be_padded s (key_bytes key.pub)

let verify pub msg ~signature =
  String.length signature = key_bytes pub
  &&
  let s = Bignum.of_bytes_be signature in
  if Bignum.compare s pub.n >= 0 then false
  else begin
    let m = Bignum.modpow s pub.e pub.n in
    let expected = Bignum.of_bytes_be (emsa_encode pub msg) in
    Bignum.equal m expected
  end

(* --- encryption ------------------------------------------------------ *)

let max_plaintext pub = key_bytes pub - 11

let encrypt rng pub msg =
  let k = key_bytes pub in
  let ml = String.length msg in
  if ml > k - 11 then invalid_arg "Rsa.encrypt: message too long";
  let pad_len = k - ml - 3 in
  let padding =
    String.init pad_len (fun _ ->
        (* Non-zero random padding bytes. *)
        Char.chr (1 + Rng.int rng 255))
  in
  let block = "\x00\x02" ^ padding ^ "\x00" ^ msg in
  let m = Bignum.of_bytes_be block in
  let c = Bignum.modpow m pub.e pub.n in
  Bignum.to_bytes_be_padded c k

let decrypt key cipher =
  let k = key_bytes key.pub in
  if String.length cipher <> k then None
  else begin
    let c = Bignum.of_bytes_be cipher in
    if Bignum.compare c key.pub.n >= 0 then None
    else begin
      let m = Bignum.modpow c key.d key.pub.n in
      let block = Bignum.to_bytes_be_padded m k in
      if String.length block < 11 || block.[0] <> '\x00' || block.[1] <> '\x02' then None
      else begin
        match String.index_from_opt block 2 '\x00' with
        | None -> None
        | Some sep when sep < 10 -> None (* at least 8 padding bytes *)
        | Some sep -> Some (String.sub block (sep + 1) (String.length block - sep - 1))
      end
    end
  end

(* --- serialisation ---------------------------------------------------- *)

module Xml = Dacs_xml.Xml

let public_to_xml pub =
  Xml.element "RSAPublicKey"
    ~children:
      [
        Xml.element "Modulus" ~children:[ Xml.text (Bignum.to_hex pub.n) ];
        Xml.element "Exponent" ~children:[ Xml.text (Bignum.to_hex pub.e) ];
      ]

let public_of_xml node =
  match (Xml.find_child node "Modulus", Xml.find_child node "Exponent") with
  | Some m, Some e -> (
    try Some { n = Bignum.of_hex (Xml.text_content m); e = Bignum.of_hex (Xml.text_content e) }
    with Invalid_argument _ -> None)
  | _ -> None

let fingerprint pub = Sha256.hex_digest (Xml.canonical_string (public_to_xml pub))
