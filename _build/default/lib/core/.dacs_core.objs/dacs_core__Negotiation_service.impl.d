lib/core/negotiation_service.ml: Dacs_crypto Dacs_net Dacs_policy Dacs_saml Dacs_ws Dacs_xml Hashtbl List Negotiation Option Printf
