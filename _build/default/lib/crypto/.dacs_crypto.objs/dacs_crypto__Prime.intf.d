lib/crypto/prime.mli: Bignum Rng
