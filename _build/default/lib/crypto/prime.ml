let small_primes =
  (* Sieve of Eratosthenes below 1000, computed once at load. *)
  let limit = 1000 in
  let sieve = Array.make (limit + 1) true in
  sieve.(0) <- false;
  sieve.(1) <- false;
  for i = 2 to limit do
    if sieve.(i) then begin
      let j = ref (i * i) in
      while !j <= limit do
        sieve.(!j) <- false;
        j := !j + i
      done
    end
  done;
  List.filter (fun i -> sieve.(i)) (List.init (limit + 1) Fun.id)

let divisible_by_small_prime n =
  List.exists
    (fun p ->
      let bp = Bignum.of_int p in
      (* p itself is prime, not a witness of compositeness. *)
      Bignum.compare n bp > 0 && Bignum.is_zero (Bignum.rem n bp))
    small_primes

(* One Miller-Rabin round with the given witness. *)
let miller_rabin_witness n witness =
  let n1 = Bignum.pred n in
  (* n-1 = d * 2^s with d odd *)
  let rec split d s = if Bignum.is_even d then split (Bignum.shift_right d 1) (s + 1) else (d, s) in
  let d, s = split n1 0 in
  let x = Bignum.modpow witness d n in
  if Bignum.equal x Bignum.one || Bignum.equal x n1 then true
  else begin
    let rec squares x i =
      if i >= s - 1 then false
      else begin
        let x = Bignum.rem (Bignum.mul x x) n in
        if Bignum.equal x n1 then true else squares x (i + 1)
      end
    in
    squares x 0
  end

let is_probably_prime ?(rounds = 20) rng n =
  match Bignum.to_int_opt n with
  | Some v when v < 1000 -> List.mem v small_primes
  | _ ->
    if Bignum.is_even n then false
    else if divisible_by_small_prime n then false
    else begin
      let n3 = Bignum.sub n (Bignum.of_int 3) in
      let rec rounds_loop i =
        if i >= rounds then true
        else begin
          (* Witness in [2, n-2]. *)
          let w = Bignum.add (Bignum.random_below rng (Bignum.succ n3)) Bignum.two in
          if miller_rabin_witness n w then rounds_loop (i + 1) else false
        end
      in
      rounds_loop 0
    end

let generate rng ~bits =
  if bits < 8 then invalid_arg "Prime.generate: need at least 8 bits";
  let top = Bignum.shift_left Bignum.one (bits - 1) in
  let rec try_candidate () =
    let r = Bignum.random_bits rng (bits - 1) in
    (* Force the top bit (exact width) and the low bit (odd). *)
    let c = Bignum.add top r in
    let c = if Bignum.is_even c then Bignum.succ c else c in
    (* Fast filter: one round with witness 2 kills almost all composites
       before the full battery runs. *)
    if (not (divisible_by_small_prime c)) && miller_rabin_witness c Bignum.two
       && is_probably_prime rng c
    then c
    else try_candidate ()
  in
  try_candidate ()
