module Xml = Dacs_xml.Xml

type category = Subject | Resource | Action | Environment

let category_name = function
  | Subject -> "Subject"
  | Resource -> "Resource"
  | Action -> "Action"
  | Environment -> "Environment"

let category_of_name = function
  | "Subject" -> Some Subject
  | "Resource" -> Some Resource
  | "Action" -> Some Action
  | "Environment" -> Some Environment
  | _ -> None

let all_categories = [ Subject; Resource; Action; Environment ]

module Key = struct
  type t = category * string

  let compare = compare
end

module Attr_map = Map.Make (Key)

type t = Value.bag Attr_map.t

let empty = Attr_map.empty

let add_bag t category id values =
  let prev = Option.value (Attr_map.find_opt (category, id) t) ~default:[] in
  Attr_map.add (category, id) (prev @ values) t

let add t category id value = add_bag t category id [ value ]

let bag t category id = Option.value (Attr_map.find_opt (category, id) t) ~default:[]

let attributes t category =
  Attr_map.fold
    (fun (cat, id) values acc -> if cat = category then (id, values) :: acc else acc)
    t []
  |> List.sort compare

let iter t f = Attr_map.iter (fun (cat, id) values -> f cat id values) t

let merge a b = Attr_map.fold (fun (cat, id) values acc -> add_bag acc cat id values) b a

let make ?(subject = []) ?(resource = []) ?(action = []) ?(environment = []) () =
  let add_all cat t pairs = List.fold_left (fun t (id, v) -> add t cat id v) t pairs in
  empty
  |> fun t -> add_all Subject t subject
  |> fun t -> add_all Resource t resource
  |> fun t -> add_all Action t action
  |> fun t -> add_all Environment t environment

let first_string t category id =
  match bag t category id with
  | Value.String s :: _ -> Some s
  | Value.Uri s :: _ -> Some s
  | _ -> None

let subject_id t = first_string t Subject "subject-id"
let resource_id t = first_string t Resource "resource-id"
let action_id t = first_string t Action "action-id"

let to_xml t =
  let section category =
    let attrs = attributes t category in
    Xml.element (category_name category)
      ~children:
        (List.concat_map
           (fun (id, values) ->
             List.map
               (fun v ->
                 Xml.element "Attribute"
                   ~attrs:
                     [
                       ("AttributeId", id);
                       ("DataType", Value.type_name (Value.type_of v));
                     ]
                   ~children:[ Xml.text (Value.to_string v) ])
               values)
           attrs)
  in
  Xml.element "Request" ~children:(List.map section all_categories)

let of_xml node =
  if Xml.tag node <> "Request" then Error "expected a Request element"
  else begin
    let result = ref empty in
    let error = ref None in
    List.iter
      (fun section ->
        match category_of_name (Xml.local_name section.Xml.tag) with
        | None -> error := Some (Printf.sprintf "unknown category element %s" section.Xml.tag)
        | Some category ->
          List.iter
            (fun attr_node ->
              let attr_node = Xml.Element attr_node in
              match (Xml.attr attr_node "AttributeId", Xml.attr attr_node "DataType") with
              | Some id, Some dt_name -> (
                match Value.data_type_of_name dt_name with
                | None -> error := Some (Printf.sprintf "unknown data type %s" dt_name)
                | Some dt -> (
                  match Value.of_string dt (Xml.text_content attr_node) with
                  | Ok v -> result := add !result category id v
                  | Error e -> error := Some e))
              | _ -> error := Some "Attribute needs AttributeId and DataType")
            (List.filter (fun e -> Xml.local_name e.Xml.tag = "Attribute") (Xml.child_elements (Xml.Element section))))
      (Xml.child_elements node);
    match !error with Some e -> Error e | None -> Ok !result
  end

let equal a b = Attr_map.equal Value.bag_equal a b

let pp fmt t =
  List.iter
    (fun category ->
      List.iter
        (fun (id, values) ->
          Format.fprintf fmt "%s/%s=%a@ " (category_name category) id Value.pp_bag values)
        (attributes t category))
    all_categories
