lib/policy/index.ml: Combine Context Decision Hashtbl List Option Policy Printf Rule Target Value
