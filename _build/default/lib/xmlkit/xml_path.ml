exception Bad_path of string

type pred =
  | No_pred
  | Attr_eq of string * string
  | Index of int

type step = { name : string; pred : pred }

let parse_step s =
  if s = "" then raise (Bad_path "empty path step");
  match String.index_opt s '[' with
  | None -> { name = s; pred = No_pred }
  | Some i ->
    let name = String.sub s 0 i in
    if name = "" then raise (Bad_path ("missing name in step: " ^ s));
    let n = String.length s in
    if s.[n - 1] <> ']' then raise (Bad_path ("unterminated predicate in step: " ^ s));
    let body = String.sub s (i + 1) (n - i - 2) in
    if body = "" then raise (Bad_path ("empty predicate in step: " ^ s));
    if body.[0] = '@' then begin
      match String.index_opt body '=' with
      | None -> raise (Bad_path ("attribute predicate needs '=': " ^ s))
      | Some j ->
        let attr = String.sub body 1 (j - 1) in
        let value = String.sub body (j + 1) (String.length body - j - 1) in
        (* Allow optional quotes around the value. *)
        let value =
          let n = String.length value in
          if n >= 2 && ((value.[0] = '\'' && value.[n - 1] = '\'') || (value.[0] = '"' && value.[n - 1] = '"'))
          then String.sub value 1 (n - 2)
          else value
        in
        { name; pred = Attr_eq (attr, value) }
    end
    else
      match int_of_string_opt body with
      | Some i when i >= 1 -> { name; pred = Index i }
      | _ -> raise (Bad_path ("bad index predicate in step: " ^ s))

let parse_path path =
  if path = "" then raise (Bad_path "empty path");
  String.split_on_char '/' path |> List.map parse_step

let step_matches step node =
  match node with
  | Xml.Text _ -> false
  | Xml.Element e -> (step.name = "*" || Xml.local_name e.tag = step.name)

let apply_pred step nodes =
  match step.pred with
  | No_pred -> nodes
  | Attr_eq (a, v) -> List.filter (fun n -> Xml.attr n a = Some v) nodes
  | Index i -> (match List.nth_opt nodes (i - 1) with Some n -> [ n ] | None -> [])

let select node path =
  let steps = parse_path path in
  let apply_step nodes step =
    List.concat_map
      (fun n ->
        let kids = Xml.children n in
        let matching = List.filter (step_matches step) kids in
        apply_pred step matching)
      nodes
  in
  List.fold_left apply_step [ node ] steps

let select_one node path = match select node path with [] -> None | n :: _ -> Some n

let select_text node path = Option.map Xml.text_content (select_one node path)

let select_attr node path name =
  match select_one node path with None -> None | Some n -> Xml.attr n name

let exists node path = select node path <> []
