type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* splitmix64 step: solid statistical quality, trivially seedable, and the
   whole library stays deterministic under a single integer seed. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits t n =
  if n < 1 || n > 62 then invalid_arg "Rng.bits";
  Int64.to_int (Int64.shift_right_logical (next_int64 t) (64 - n))

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  (* Rejection sampling over the smallest covering power of two keeps the
     distribution exactly uniform. *)
  let rec width n = if 1 lsl n >= bound then n else width (n + 1) in
  let w = width 1 in
  let rec draw () =
    let v = bits t w in
    if v < bound then v else draw ()
  in
  draw ()

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. v /. 9007199254740992.0 (* 2^53 *)

let bool t = bits t 1 = 1

let bytes t n =
  String.init n (fun _ -> Char.chr (bits t 8))

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let split t = create (next_int64 t)
