(** ASCII sequence diagrams from network traces.

    Turns a {!Net.trace} into the message-sequence-chart view the paper's
    figures use — handy for examples and for eyeballing protocol runs:

    {v
      client     pep        pdp
        |---------|          |   access            t=0.000
        |         |----------|   authz-query       t=0.005
        |         |<---------|   authz-query-reply t=0.010
        |<--------|          |   access-reply      t=0.015
    v} *)

val render : ?participants:Net.node_id list -> Net.trace_entry list -> string
(** Render delivered messages in order.  [participants] fixes the column
    order (defaults to first-appearance order); nodes not listed are
    appended. *)

val participants_of : Net.trace_entry list -> Net.node_id list
(** Nodes in first-appearance order. *)
