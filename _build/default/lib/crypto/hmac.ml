let block_size = 64

let sha256 ~key msg =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let pad c =
    String.init block_size (fun i ->
        let k = if i < String.length key then Char.code key.[i] else 0 in
        Char.chr (k lxor c))
  in
  let ipad = pad 0x36 and opad = pad 0x5C in
  Sha256.digest (opad ^ Sha256.digest (ipad ^ msg))

let sha256_hex ~key msg = Encoding.hex_encode (sha256 ~key msg)

let verify ~key msg ~tag =
  let expected = sha256 ~key msg in
  if String.length expected <> String.length tag then false
  else begin
    let diff = ref 0 in
    String.iteri (fun i c -> diff := !diff lor (Char.code c lxor Char.code tag.[i])) expected;
    !diff = 0
  end
