module Xml = Dacs_xml.Xml
module Value = Dacs_policy.Value
module Decision = Dacs_policy.Decision

let element_name = "X509AttributeCertificate"

let ( let* ) = Result.bind

(* Serial numbers in X.509 are numeric; the assertion id is carried in an
   extension attribute so the round-trip is lossless. *)
let to_xml (a : Assertion.t) =
  let attributes =
    List.map
      (fun (name, v) ->
        Xml.element "Attribute"
          ~attrs:[ ("Type", name); ("DataType", Value.type_name (Value.type_of v)) ]
          ~children:[ Xml.text (Value.to_string v) ])
      (Assertion.attributes a)
  in
  let decisions =
    List.map
      (fun (resource, action, decision) ->
        Xml.element "AuthorizationDecision"
          ~attrs:
            [
              ("Resource", resource);
              ("Action", action);
              ("Decision", Decision.decision_to_string decision);
            ])
      (Assertion.decisions a)
  in
  Xml.element element_name
    ~attrs:[ ("Version", "2") ]
    ~children:
      ([
         Xml.element "Holder" ~children:[ Xml.text a.Assertion.subject ];
         Xml.element "Issuer" ~children:[ Xml.text a.Assertion.issuer ];
         Xml.element "SerialNumber" ~attrs:[ ("Id", a.Assertion.id) ];
         Xml.element "AttCertValidityPeriod"
           ~attrs:
             [
               ("NotBeforeTime", Printf.sprintf "%.6f" a.Assertion.not_before);
               ("NotAfterTime", Printf.sprintf "%.6f" a.Assertion.not_on_or_after);
               ("IssueInstant", Printf.sprintf "%.6f" a.Assertion.issued_at);
             ];
         Xml.element "Attributes" ~children:attributes;
         Xml.element "Extensions" ~children:decisions;
       ]
      @
      match a.Assertion.signature with
      | None -> []
      | Some s ->
        [
          Xml.element "SignatureValue"
            ~children:[ Xml.text (Dacs_crypto.Encoding.base64_encode s) ];
        ])

let text_child node name =
  match Xml.find_child node name with
  | Some c -> Ok (Xml.text_content c)
  | None -> Error (Printf.sprintf "%s lacks <%s>" element_name name)

let of_xml node =
  if Xml.local_name (Xml.tag node) <> element_name then
    Error (Printf.sprintf "expected <%s>" element_name)
  else begin
    let* subject = text_child node "Holder" in
    let* issuer = text_child node "Issuer" in
    let* id =
      match Option.bind (Xml.find_child node "SerialNumber") (fun n -> Xml.attr n "Id") with
      | Some id -> Ok id
      | None -> Error "SerialNumber lacks Id"
    in
    match Xml.find_child node "AttCertValidityPeriod" with
    | None -> Error "missing validity period"
    | Some validity -> (
      let time name =
        match Option.bind (Xml.attr validity name) float_of_string_opt with
        | Some t -> Ok t
        | None -> Error (Printf.sprintf "bad or missing %s" name)
      in
      let* not_before = time "NotBeforeTime" in
      let* not_on_or_after = time "NotAfterTime" in
      let* issued_at = time "IssueInstant" in
      let* attrs =
        match Xml.find_child node "Attributes" with
        | None -> Ok []
        | Some attrs_node ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | a :: rest -> (
              match (Xml.attr a "Type", Xml.attr a "DataType") with
              | Some name, Some dt_name -> (
                match Value.data_type_of_name dt_name with
                | None -> Error (Printf.sprintf "unknown data type %s" dt_name)
                | Some dt -> (
                  match Value.of_string dt (Xml.text_content a) with
                  | Ok v -> go ((name, v) :: acc) rest
                  | Error e -> Error e))
              | _ -> Error "Attribute needs Type and DataType")
          in
          go [] (Xml.find_children attrs_node "Attribute")
      in
      let* decisions =
        match Xml.find_child node "Extensions" with
        | None -> Ok []
        | Some ext ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | d :: rest -> (
              match (Xml.attr d "Resource", Xml.attr d "Action", Xml.attr d "Decision") with
              | Some resource, Some action, Some ds -> (
                match Decision.decision_of_string ds with
                | Some decision ->
                  go
                    (Assertion.Authz_decision_statement { resource; action; decision } :: acc)
                    rest
                | None -> Error (Printf.sprintf "unknown decision %s" ds))
              | _ -> Error "AuthorizationDecision needs Resource, Action and Decision")
          in
          go [] (Xml.find_children ext "AuthorizationDecision")
      in
      let signature =
        Option.map
          (fun n -> Dacs_crypto.Encoding.base64_decode (Xml.text_content n))
          (Xml.find_child node "SignatureValue")
      in
      let statements =
        (match attrs with [] -> [] | attrs -> [ Assertion.Attribute_statement attrs ]) @ decisions
      in
      Ok
        {
          Assertion.id;
          issuer;
          subject;
          issued_at;
          not_before;
          not_on_or_after;
          statements;
          signature;
        })
  end

let to_string a = Xml.to_string (to_xml a)

let of_string s =
  match Xml.of_string_opt s with
  | None -> Error "malformed XML"
  | Some node -> of_xml node
