lib/policy/combine.mli: Decision Target
