(** Metrics registry: the shared numeric substrate of the observability
    layer (§3 management challenge).

    Named counters, gauges and fixed-bucket histograms, each identified by
    a metric name plus a label set; requesting the same (name, labels)
    pair again returns the {e same} instance, so independent components
    incrementing "their" counter actually share one cell — that identity
    is what makes one [reset] consistent everywhere.

    All timestamps come from the [now] function given at {!create} — in
    DACS that is the simnet virtual clock, so latency histograms and
    exposition timestamps are fully deterministic for a given seed. *)

type t

val create : ?now:(unit -> float) -> unit -> t
(** [now] (default: a constant 0) timestamps exposition samples.  Wire it
    to the simulation clock. *)

val now : t -> float

(** {1 Instruments}

    Metric names must match [[a-zA-Z_:][a-zA-Z0-9_:]*].  Label lists are
    canonicalised by sorting on the label key; duplicate keys raise.
    Registering an existing name with a different instrument kind raises
    [Invalid_argument] — one name, one type. *)

type counter
type gauge
type histogram

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
val inc : ?by:int -> counter -> unit
(** [by] defaults to 1 and must be >= 0 (counters are monotonic between
    resets). *)

val counter_value : counter -> int

val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge
val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val default_latency_buckets : float list
(** 1 ms … 10 s, roughly exponential — sized for simulated network hops. *)

val histogram :
  t -> ?help:string -> ?labels:(string * string) list -> ?buckets:float list -> string -> histogram
(** [buckets] (default {!default_latency_buckets}) are the upper bounds
    of the fixed buckets and must be strictly increasing; an implicit
    [+Inf] bucket always exists.  For an already-registered series the
    existing buckets win. *)

val observe : histogram -> float -> unit
(** A value lands in the first bucket whose upper bound is [>= v]
    (Prometheus [le] semantics). *)

type exemplar = { e_value : float; e_trace : string; e_at : float }
(** One concrete observation kept as the face of a bucket: the value, the
    trace id it belongs to, and when it was observed (virtual clock). *)

val observe_exemplar : histogram -> float -> trace:string -> at:float -> unit
(** Like {!observe}, but additionally remembers this observation as the
    bucket's exemplar (latest observation wins — retention is bounded at
    one exemplar per bucket).  An empty [trace] records no exemplar. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val bucket_counts : histogram -> (float * int) list
(** Per-bucket (non-cumulative) counts, paired with each upper bound;
    the final pair is [(infinity, overflow-count)]. *)

val histogram_exemplars : histogram -> (float * exemplar) list
(** The buckets currently holding an exemplar, as (upper bound, exemplar)
    pairs in bucket order — the links from latency buckets back to the
    traces that landed in them. *)

val quantile : histogram -> float -> float
(** Prometheus-style [histogram_quantile]: locate the bucket holding rank
    [q * count] in the cumulative distribution and interpolate linearly
    inside it.  [nan] on an empty histogram; a rank falling in the
    overflow bucket clamps to the highest finite bound.  [q] outside
    [0, 1] raises [Invalid_argument]. *)

(** {1 Reset}

    Resets zero values but keep registrations (and bucket layouts). *)

val reset : t -> unit
val reset_counter : counter -> unit
val reset_gauge : gauge -> unit
val reset_histogram : histogram -> unit

(** {1 Snapshot and exposition} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { buckets : (float * int) list; sum : float; count : int }

type sample = { name : string; labels : (string * string) list; value : value }

val snapshot : t -> sample list
(** Every registered series, sorted by name then labels — a stable,
    deterministic order. *)

val sum_counter : t -> string -> int
(** Sum of a counter across all its label sets (0 when the name was never
    registered).  The bus-wide view over per-caller series. *)

val sum_counter_by : t -> string -> label:string -> (string * int) list
(** Sum of a counter grouped by the value of one label key, sorted by
    label value — e.g. the per-reason breakdown of a shed counter.
    Series lacking the label are omitted. *)

val series_count : t -> int

val render : t -> string
(** Prometheus text exposition: [# HELP]/[# TYPE] per name, histogram
    series with cumulative [le] buckets, [_sum] and [_count], and a
    virtual-clock millisecond timestamp on every sample line. *)

val render_json : t -> string
(** The same snapshot as a single-line JSON object, for bench scrapers. *)
