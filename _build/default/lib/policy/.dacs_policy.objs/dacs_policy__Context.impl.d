lib/policy/context.ml: Dacs_xml Format List Map Option Printf Value
