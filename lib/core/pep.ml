module Xml = Dacs_xml.Xml
module Service = Dacs_ws.Service
module Context = Dacs_policy.Context
module Value = Dacs_policy.Value
module Decision = Dacs_policy.Decision
module Obligation = Dacs_policy.Obligation
module Assertion = Dacs_saml.Assertion
module Metrics = Dacs_telemetry.Metrics
module Trace = Dacs_telemetry.Trace

type mode =
  | Pull of {
      pdps : Dacs_net.Net.node_id list;
      cache : Decision_cache.t option;
      call_timeout : float;
    }
  | Sharded of { tier : Pdp_tier.t; cache : Decision_cache.t option }
  | Push of {
      trusted_issuer : string -> Dacs_crypto.Rsa.public_key option;
      check_revocation : Dacs_net.Net.node_id option;
      local_pdp : Pdp_service.t option;
    }
  | Agent of Pdp_service.t

type admission = { max_inflight : int; max_queue : int }

type stats = {
  requests : int;
  granted : int;
  denied : int;
  pdp_calls : int;
  failovers : int;
  retries : int;
  breaker_trips : int;
  breaker_rejections : int;
  cache_hits : int;
  l2_hits : int;
  coalesced : int;
  stale_serves : int;
  offline_serves : int;
  shed : int;
  assertion_rejections : int;
  revocation_checks : int;
  obligations_fulfilled : int;
}

(* Every stat lives in the bus-wide registry, labelled by this PEP's node
   — the resilience trio on the very series the RPC layer increments
   ([rpc_*_total{src=node}]), so one reset is consistent everywhere. *)
let shed_reason = "overload: admission queue full"

type counters = {
  c_requests : Metrics.counter;
  c_granted : Metrics.counter;
  c_denied : Metrics.counter;
  c_pdp_calls : Metrics.counter;
  c_failovers : Metrics.counter;
  c_retries : Metrics.counter;
  c_breaker_trips : Metrics.counter;
  c_breaker_rejections : Metrics.counter;
  c_cache_hits : Metrics.counter;
  c_l2_hits : Metrics.counter;
  c_stale_serves : Metrics.counter;
  c_offline_serves : Metrics.counter;
  c_shed : Metrics.counter;
  (* The admission-shed cell, resolved once: the shed path must not pay a
     label-set registration per rejected request. *)
  c_shed_admission : Metrics.counter;
  c_assertion_rejections : Metrics.counter;
  c_revocation_checks : Metrics.counter;
  c_obligations_fulfilled : Metrics.counter;
  h_decide : Provenance.stage -> Metrics.histogram;
      (* stage-labelled ladder latency; handles memoised per stage so an
         observation is one array read, not a registry lookup *)
  h_queue_wait : Metrics.histogram;
  h_l2_lookup : Metrics.histogram;
  h_live_call : Metrics.histogram;
}

let make_counters metrics ~node =
  let own ?help name = Metrics.counter metrics ?help ~labels:[ ("node", node) ] name in
  let rpc name = Metrics.counter metrics ~labels:[ ("src", node) ] name in
  let c_shed_admission =
    Metrics.counter metrics ~help:"Shed requests by reason"
      ~labels:[ ("node", node); ("reason", shed_reason) ]
      "pep_shed_reason_total"
  in
  let h_decide =
    (* One histogram handle per ladder stage, resolved on first use so
       the exposed series set is unchanged (a stage never served never
       registers), then cached — no per-observe label-list rebuild. *)
    let memo = Array.make Provenance.stage_count None in
    fun stage ->
      let i = Provenance.stage_index stage in
      match memo.(i) with
      | Some h -> h
      | None ->
        let h =
          Metrics.histogram metrics ~help:"Decision-ladder latency by serving stage"
            ~labels:[ ("node", node); ("stage", Provenance.stage_name stage) ]
            "pep_decide_seconds"
        in
        memo.(i) <- Some h;
        h
  in
  {
    c_requests = own "pep_requests_total" ~help:"Access requests received by the PEP";
    c_granted = own "pep_granted_total" ~help:"Requests answered with access granted";
    c_denied = own "pep_denied_total" ~help:"Requests answered with access denied";
    c_pdp_calls = own "pep_pdp_calls_total" ~help:"Authorisation queries issued to PDP replicas";
    c_failovers = own "pep_failovers_total" ~help:"PDP replicas skipped after a failure";
    c_retries = rpc "rpc_retries_total";
    c_breaker_trips = rpc "rpc_breaker_trips_total";
    c_breaker_rejections = rpc "rpc_breaker_rejections_total";
    c_cache_hits = own "pep_cache_hits_total" ~help:"Decisions served fresh from cache";
    c_l2_hits = own "pep_l2_hits_total" ~help:"Decisions served fresh from the shared L2 cache";
    c_stale_serves = own "pep_stale_serves_total" ~help:"Degraded answers served from expired cache";
    c_offline_serves =
      own "pep_offline_serves_total" ~help:"Decisions served from the domain's offline event log";
    c_shed = own "pep_shed_total" ~help:"Requests shed by the bounded admission queue";
    c_shed_admission;
    c_assertion_rejections =
      own "pep_assertion_rejections_total" ~help:"Capability assertions rejected";
    c_revocation_checks = own "pep_revocation_checks_total" ~help:"Revocation-status queries issued";
    c_obligations_fulfilled = own "pep_obligations_fulfilled_total" ~help:"Obligations fulfilled";
    h_decide;
    h_queue_wait =
      Metrics.histogram metrics ~help:"Admission-queue wait of parked requests"
        ~labels:[ ("node", node) ] "pep_queue_wait_seconds";
    h_l2_lookup =
      Metrics.histogram metrics ~help:"Shared L2 cache lookup round-trip latency"
        ~labels:[ ("node", node) ] "pep_l2_lookup_seconds";
    h_live_call =
      Metrics.histogram metrics ~help:"Live decision-tier call latency (failovers included)"
        ~labels:[ ("node", node) ] "pep_live_call_seconds";
  }

type t = {
  services : Service.t;
  node : Dacs_net.Net.node_id;
  domain : string;
  resource : string;
  content : string;
  audit : Audit.t;
  encryption_key : string option;
  counters : counters;
  sf : (Decision.result * Provenance.t) Cache_hierarchy.Single_flight.t;
  mutable mode : mode;
  mutable decision_trust : Dacs_crypto.Cert.Trust_store.t option;
  mutable retry : Dacs_net.Rpc.retry_policy option;
  mutable stale_window : float;
  mutable offline : Offline.t option;
  mutable l2 : Dacs_net.Net.node_id option;
  mutable coalesce : bool;
  mutable admission : admission option;
  mutable inflight : int;
  waiting : (unit -> unit) Queue.t;
}

let node t = t.node
let resource t = t.resource
let audit t = t.audit
let tracer t = Service.tracer t.services

let stats t =
  let v = Metrics.counter_value in
  let c = t.counters in
  {
    requests = v c.c_requests;
    granted = v c.c_granted;
    denied = v c.c_denied;
    pdp_calls = v c.c_pdp_calls;
    failovers = v c.c_failovers;
    retries = v c.c_retries;
    breaker_trips = v c.c_breaker_trips;
    breaker_rejections = v c.c_breaker_rejections;
    cache_hits = v c.c_cache_hits;
    l2_hits = v c.c_l2_hits;
    coalesced = Cache_hierarchy.Single_flight.coalesced t.sf;
    stale_serves = v c.c_stale_serves;
    offline_serves = v c.c_offline_serves;
    shed = v c.c_shed;
    assertion_rejections = v c.c_assertion_rejections;
    revocation_checks = v c.c_revocation_checks;
    obligations_fulfilled = v c.c_obligations_fulfilled;
  }

let reset_stats t =
  let c = t.counters in
  List.iter Metrics.reset_counter
    [
      c.c_requests;
      c.c_granted;
      c.c_denied;
      c.c_pdp_calls;
      c.c_failovers;
      c.c_retries;
      c.c_breaker_trips;
      c.c_breaker_rejections;
      c.c_cache_hits;
      c.c_l2_hits;
      Cache_hierarchy.Single_flight.counter t.sf;
      c.c_stale_serves;
      c.c_offline_serves;
      c.c_shed;
      c.c_shed_admission;
      c.c_assertion_rejections;
      c.c_revocation_checks;
      c.c_obligations_fulfilled;
    ]

let now t = Dacs_net.Net.now (Service.net t.services)

let invalidate_cache t =
  match t.mode with
  | Pull { cache = Some cache; _ } | Sharded { cache = Some cache; _ } ->
    Decision_cache.invalidate_all cache
  | Pull _ | Sharded _ | Push _ | Agent _ -> ()

let invalidate_key t ~key =
  match t.mode with
  | Pull { cache = Some cache; _ } | Sharded { cache = Some cache; _ } ->
    Decision_cache.invalidate cache ~key
  | Pull _ | Sharded _ | Push _ | Agent _ -> ()

let invalidate_region t region =
  match t.mode with
  | Pull { cache = Some cache; _ } | Sharded { cache = Some cache; _ } ->
    Decision_cache.invalidate_region cache region
  | Pull _ | Sharded _ | Push _ | Agent _ -> 0

let set_l2 t l2 = t.l2 <- l2
let l2 t = t.l2

let set_coalescing t on = t.coalesce <- on
let coalescing t = t.coalesce

let set_admission t a =
  (match a with
  | Some { max_inflight; max_queue } when max_inflight <= 0 || max_queue < 0 ->
    invalid_arg "Pep.set_admission: max_inflight must be positive and max_queue non-negative"
  | _ -> ());
  t.admission <- a;
  (* Removing the bound admits everything that was waiting.  Each job
     still releases its slot when it completes, so take one first. *)
  if a = None then begin
    let drained = Queue.fold (fun acc job -> job :: acc) [] t.waiting in
    Queue.clear t.waiting;
    List.iter
      (fun job ->
        t.inflight <- t.inflight + 1;
        job ())
      (List.rev drained)
  end

let admission t = t.admission
let admission_inflight t = t.inflight
let admission_queue_length t = Queue.length t.waiting

let require_signed_decisions t trust = t.decision_trust <- Some trust

let set_retry_policy t retry = t.retry <- retry
let retry_policy t = t.retry

let set_stale_window t window =
  if window < 0.0 then invalid_arg "Pep.set_stale_window: negative window";
  t.stale_window <- window

let stale_window t = t.stale_window

let set_offline_replica t o = t.offline <- o
let offline_replica t = t.offline

let set_pull_pdps t pdps =
  match t.mode with
  | Pull p -> t.mode <- Pull { p with pdps }
  | Sharded { tier; _ } ->
    (* Discovery-driven rebinding reshapes the ring: lapsed shards drop
       out, new replicas join, and only their keys remap. *)
    Pdp_tier.set_shards tier pdps
  | Push _ | Agent _ -> ()

let pull_pdps t =
  match t.mode with
  | Pull p -> p.pdps
  | Sharded { tier; _ } -> Pdp_tier.shards tier
  | Push _ | Agent _ -> []

(* --- enforcement -------------------------------------------------------- *)

let fulfil_obligations t (result : Decision.result) =
  (* Returns the content (possibly encrypted) and whether encryption was
     applied.  Unknown obligations are a PEP error in XACML; here they
     deny (the PEP "must understand" its obligations, §2.3). *)
  let rec go content encrypted fulfilled = function
    | [] -> Ok (content, encrypted, fulfilled)
    | (o : Obligation.t) :: rest -> (
      match o.Obligation.id with
      | "urn:dacs:obligation:audit" -> go content encrypted (fulfilled + 1) rest
      | "urn:dacs:obligation:content-filter" -> (
        (* Content-based access (§3.1): inspect the representation that
           would be provisioned; refuse when the forbidden marker occurs. *)
        match List.assoc_opt "forbidden" o.Obligation.parameters with
        | Some (Value.String forbidden) ->
          let contains hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
            nn = 0 || go 0
          in
          (* Always inspect the original representation, even if an
             earlier obligation already encrypted the response. *)
          if contains t.content forbidden then
            Error (Printf.sprintf "content filter matched %S" forbidden)
          else go content encrypted (fulfilled + 1) rest
        | _ -> Error "content-filter obligation lacks its forbidden parameter")
      | "urn:dacs:obligation:encrypt-response" -> (
        match t.encryption_key with
        | None -> Error "obligation to encrypt, but the PEP has no key"
        | Some key ->
          let rng = Dacs_crypto.Rng.create 7L in
          let cipher = Dacs_crypto.Stream_cipher.encrypt rng ~key content in
          go (Dacs_crypto.Encoding.base64_encode cipher) true (fulfilled + 1) rest)
      | _ -> Error (Printf.sprintf "unknown obligation %s" o.Obligation.id))
  in
  go t.content false 0 result.Decision.obligations

let enforce t ~subject ~action ?provenance (result : Decision.result) reply =
  let record decision =
    Audit.record t.audit
      {
        Audit.at = now t;
        domain = t.domain;
        subject;
        resource = t.resource;
        action;
        decision;
        provenance;
      }
  in
  match result.Decision.decision with
  | Decision.Permit -> (
    match fulfil_obligations t result with
    | Ok (content, encrypted, fulfilled) ->
      record Decision.Permit;
      Metrics.inc t.counters.c_granted;
      Metrics.inc ~by:fulfilled t.counters.c_obligations_fulfilled;
      reply (Wire.access_granted ~content ~encrypted ())
    | Error reason ->
      (* An unfulfillable obligation forbids granting access. *)
      record Decision.Deny;
      Metrics.inc t.counters.c_denied;
      reply (Wire.access_denied ~reason))
  | Decision.Deny ->
    record Decision.Deny;
    Metrics.inc t.counters.c_denied;
    reply (Wire.access_denied ~reason:"denied by policy")
  | Decision.Not_applicable ->
    (* Deny-biased PEP: no applicable policy means no access. *)
    record Decision.Deny;
    Metrics.inc t.counters.c_denied;
    reply (Wire.access_denied ~reason:"no applicable policy")
  | Decision.Indeterminate m ->
    record (Decision.Indeterminate m);
    Metrics.inc t.counters.c_denied;
    reply (Wire.access_denied ~reason:(Printf.sprintf "authorisation error: %s" m))

(* --- pull mode ------------------------------------------------------------ *)

let build_context t ~subject_attrs ~action =
  Context.make ~subject:subject_attrs
    ~resource:[ ("resource-id", Value.String t.resource) ]
    ~action:[ ("action-id", Value.String action) ]
    ~environment:[ ("time", Value.Time (now t)) ]
    ()

(* Ladder plumbing shared by pull and sharded modes: L1 fresh -> L2 fresh
   -> live tier -> bounded-stale L1 -> offline log -> fail closed.
   Identical concurrent
   queries (same request key) are coalesced onto one descent.  Every exit
   mints a provenance record naming the rung that answered. *)

(* The ambient trace id as the exemplar tag for latency histograms — ""
   (no exemplar) when tracing is off. *)
let trace_tag tr =
  match Trace.current tr with
  | Some ctx -> Printf.sprintf "%Lx" ctx.Trace.trace_id
  | None -> ""

let l1_put t cache ~key result =
  match cache with
  | Some cache -> Decision_cache.put cache ~now:(now t) ~key result
  | None -> ()

let l2_put t ~key result =
  match t.l2 with
  | Some l2 -> Cache_hierarchy.L2.remote_put t.services ~src:t.node ~l2 ~key result
  | None -> ()

(* Consult the domain's shared cache between an L1 miss and the live
   tier.  A hit also warms L1, so the replica that asked converges to
   answering locally.  An unreachable or malformed L2 is a miss. *)
let consult_l2 t cache ~key ~miss k =
  match t.l2 with
  | None -> miss ()
  | Some l2 ->
    let started = now t in
    let tag = trace_tag (tracer t) in
    Cache_hierarchy.L2.remote_lookup t.services ~src:t.node ~l2 ~key (fun answer ->
        Metrics.observe_exemplar t.counters.h_l2_lookup (now t -. started) ~trace:tag
          ~at:(now t);
        match answer with
        | Some result ->
          Metrics.inc t.counters.c_l2_hits;
          Trace.record (tracer t) "pep:l2-hit";
          l1_put t cache ~key result;
          k result
        | None -> miss ())

(* Waiters folded onto an identical in-flight descent are served by the
   leader's provenance, re-flagged as coalesced — theirs was not a
   descent of its own.  The leader mints its record at *completion*, so a
   waiter that parked before a partition transition still observes the
   rung that actually answered (e.g. [Offline] when the tier vanished
   mid-flight), never the rung the ladder would have chosen at join
   time; only [at] is re-stamped to the waiter's own delivery instant. *)
let join_flight t ~key k =
  if not t.coalesce then Cache_hierarchy.Single_flight.Leader k
  else begin
    let is_leader = ref false in
    let deliver ((result, prov) : Decision.result * Provenance.t) =
      if !is_leader then k (result, prov)
      else k (result, { prov with Provenance.coalesced = true; at = now t })
    in
    match Cache_hierarchy.Single_flight.join t.sf ~key deliver with
    | Cache_hierarchy.Single_flight.Leader d ->
      is_leader := true;
      Cache_hierarchy.Single_flight.Leader d
    | Cache_hierarchy.Single_flight.Coalesced -> Cache_hierarchy.Single_flight.Coalesced
  end

(* A provenance minter for one descent: resilience flags are read as
   deltas of this PEP's own rpc series between the descent's start and
   the answer. *)
let provenance_minter t =
  let resilience () =
    ( Metrics.counter_value t.counters.c_retries,
      Metrics.counter_value t.counters.c_breaker_trips
      + Metrics.counter_value t.counters.c_breaker_rejections )
  in
  let retries0, breaker0 = resilience () in
  fun ?shard ?batch ?failovers ?stale_age ?epoch ?log_head stage ->
    let retries1, breaker1 = resilience () in
    Provenance.make ?shard ?batch ?failovers ?stale_age ?epoch ?log_head
      ~retried:(retries1 > retries0) ~breaker_tripped:(breaker1 > breaker0) ~at:(now t) stage

(* The offline rung: below bounded-stale, above fail-closed.  With every
   live authority unreachable and no servable stale entry, a PEP holding
   an offline replica decides from the signed local event log.  The
   answer is deliberately NOT written to L1/L2 — it reflects partition-
   local knowledge and must not outlive the partition in caches that
   reconciliation would then have to chase; contradicted decisions are
   instead invalidated by deny-wins replay on heal. *)
let offline_serve t ctx ~mk k =
  match t.offline with
  | None -> None
  | Some o -> (
    (* Reaching the degrade path means the live tier is unreachable: this
       starts (or continues) an offline episode, so the epoch stamped on
       events and provenance is consistent across the whole episode. *)
    Offline.set_offline o true;
    match Offline.decide o ctx with
    | None -> None
    | Some (result, head) ->
      Metrics.inc t.counters.c_offline_serves;
      Trace.record (tracer t) "pep:offline-serve";
      Some (k (result, mk ~epoch:(Offline.epoch o) ~log_head:head)))

let pull_decide t ~pdps ~cache ~call_timeout ctx k =
  let key = Decision_cache.request_key ctx in
  match join_flight t ~key k with
  | Cache_hierarchy.Single_flight.Coalesced -> Trace.record (tracer t) "pep:coalesced"
  | Cache_hierarchy.Single_flight.Leader k -> (
    let prov = provenance_minter t in
    let found =
      match cache with
      | None -> Decision_cache.Absent
      | Some cache -> Decision_cache.lookup cache ~now:(now t) ~max_stale:t.stale_window ~key
    in
    match found with
    | Decision_cache.Fresh result ->
      Metrics.inc t.counters.c_cache_hits;
      Trace.record (tracer t) "pep:cache-hit";
      k (result, prov Provenance.L1)
    | Decision_cache.Stale _ | Decision_cache.Absent ->
      (* Degraded availability (§ dependability): with every replica down, a
         decision expired by at most [stale_window] seconds is still served
         — the last answer the policy actually gave — in preference to
         denying all access.  Beyond the bound we fail closed. *)
      let degrade ~failovers () =
        match found with
        | Decision_cache.Stale { result; age } when t.stale_window > 0.0 ->
          Metrics.inc t.counters.c_stale_serves;
          Trace.record (tracer t) "pep:stale-serve";
          k (result, prov ~failovers ~stale_age:age Provenance.Stale)
        | _ -> (
          let mk ~epoch ~log_head = prov ~failovers ~epoch ~log_head Provenance.Offline in
          match offline_serve t ctx ~mk k with
          | Some () -> ()
          | None ->
            k
              ( Decision.indeterminate "no decision point reachable",
                prov ~failovers Provenance.Fail_closed ))
      in
      let live_started = ref 0.0 in
      let live_tag = ref "" in
      let live_done () =
        Metrics.observe_exemplar t.counters.h_live_call (now t -. !live_started)
          ~trace:!live_tag ~at:(now t)
      in
      let rec try_pdps ~failovers = function
        | [] ->
          live_done ();
          degrade ~failovers ()
        | pdp :: rest ->
          Metrics.inc t.counters.c_pdp_calls;
          Service.call_resilient t.services ~src:t.node ~dst:pdp ~service:"authz-query"
            ~timeout:call_timeout ?retry:t.retry (Wire.authz_query ctx)
            (fun response ->
              match response with
              | Ok body -> (
                let parsed =
                  match t.decision_trust with
                  | None -> Wire.parse_authz_response body
                  | Some trust ->
                    (* Only authenticated decisions are enforceable. *)
                    Result.map fst (Wire.verify_signed_authz_response ~trust ~now:(now t) body)
                in
                live_done ();
                match parsed with
                | Ok result ->
                  l1_put t cache ~key result;
                  l2_put t ~key result;
                  k
                    ( result,
                      prov ~shard:pdp ~failovers ~epoch:(Wire.authz_response_epoch body)
                        Provenance.Live )
                | Error e ->
                  k
                    ( Decision.indeterminate ("unacceptable PDP response: " ^ e),
                      prov ~shard:pdp ~failovers Provenance.Live ))
              | Error _ ->
                (* Failover to the next replica (§ dependability). *)
                if rest <> [] then begin
                  Metrics.inc t.counters.c_failovers;
                  Trace.record (tracer t) ("pep:failover from " ^ pdp)
                end;
                try_pdps ~failovers:(failovers + 1) rest)
      in
      let live () =
        live_started := now t;
        live_tag := trace_tag (tracer t);
        try_pdps ~failovers:0 pdps
      in
      consult_l2 t cache ~key ~miss:live (fun result -> k (result, prov Provenance.L2)))

(* --- sharded mode --------------------------------------------------------- *)

let tier_decide t ~tier ~cache ctx k =
  let key = Decision_cache.request_key ctx in
  match join_flight t ~key k with
  | Cache_hierarchy.Single_flight.Coalesced -> Trace.record (tracer t) "pep:coalesced"
  | Cache_hierarchy.Single_flight.Leader k -> (
    let prov = provenance_minter t in
    let found =
      match cache with
      | None -> Decision_cache.Absent
      | Some cache -> Decision_cache.lookup cache ~now:(now t) ~max_stale:t.stale_window ~key
    in
    match found with
    | Decision_cache.Fresh result ->
      Metrics.inc t.counters.c_cache_hits;
      Trace.record (tracer t) "pep:cache-hit";
      k (result, prov Provenance.L1)
    | Decision_cache.Stale _ | Decision_cache.Absent ->
      let live () =
        Metrics.inc t.counters.c_pdp_calls;
        let started = now t in
        let tag = trace_tag (tracer t) in
        Pdp_tier.decide_meta ~key tier ctx (fun outcome meta ->
            Metrics.observe_exemplar t.counters.h_live_call (now t -. started) ~trace:tag
              ~at:(now t);
            let { Pdp_tier.shard; batch; failovers; epoch } = meta in
            match outcome with
            | Ok result ->
              l1_put t cache ~key result;
              l2_put t ~key result;
              k (result, prov ?shard ~batch ~failovers ~epoch Provenance.Live)
            | Error reason -> (
              (* Same degradation ladder as pull mode, per shard: the tier
                 already exhausted its replicas, so serve a bounded-stale
                 decision if we hold one, else fail closed. *)
              match found with
              | Decision_cache.Stale { result; age } when t.stale_window > 0.0 ->
                Metrics.inc t.counters.c_stale_serves;
                Trace.record (tracer t) "pep:stale-serve";
                k (result, prov ~failovers ~stale_age:age Provenance.Stale)
              | _ -> (
                let mk ~epoch ~log_head =
                  prov ~failovers ~epoch ~log_head Provenance.Offline
                in
                match offline_serve t ctx ~mk k with
                | Some () -> ()
                | None ->
                  k (Decision.indeterminate reason, prov ~failovers Provenance.Fail_closed))))
      in
      consult_l2 t cache ~key ~miss:live (fun result -> k (result, prov Provenance.L2)))

(* --- push mode --------------------------------------------------------------- *)

let find_assertion headers =
  (* Capabilities arrive either as SAML assertions (CAS style) or X.509
     attribute certificates (VOMS style); both decode to the same logical
     capability. *)
  List.find_map
    (fun h ->
      match Xml.local_name (Xml.tag h) with
      | "Assertion" -> (
        match Assertion.of_xml h with Ok a -> Some a | Error _ -> None)
      | name when name = Dacs_saml.Attribute_cert.element_name -> (
        match Dacs_saml.Attribute_cert.of_xml h with Ok a -> Some a | Error _ -> None)
      | _ -> None)
    headers

let push_decide t ~trusted_issuer ~check_revocation ~local_pdp ~headers ~action ctx k =
  let deny_with reason =
    Metrics.inc t.counters.c_assertion_rejections;
    Trace.record (tracer t) ("pep:assertion-rejected: " ^ reason);
    k { Decision.decision = Decision.Indeterminate reason; obligations = [] }
  in
  match find_assertion headers with
  | None -> deny_with "no capability assertion presented"
  | Some assertion -> (
    match Assertion.validate ~trusted_key:trusted_issuer ~now:(now t) assertion with
    | Error failure -> deny_with (Assertion.failure_to_string failure)
    | Ok () ->
      if not (Assertion.permits assertion ~resource:t.resource ~action) then
        deny_with "capability does not cover this access"
      else begin
        let continue_after_revocation () =
          (* The resource provider may still impose its own restrictions
             (the paper: the capability service only pre-screens). *)
          match local_pdp with
          | None -> k Decision.permit
          | Some pdp -> Pdp_service.evaluate_local pdp ctx k
        in
        match check_revocation with
        | None -> continue_after_revocation ()
        | Some authority ->
          Metrics.inc t.counters.c_revocation_checks;
          Service.call_resilient t.services ~src:t.node ~dst:authority ~service:"revocation-check"
            ?retry:t.retry (Wire.revocation_check ~assertion_id:assertion.Assertion.id)
            (fun response ->
              match response with
              | Ok body -> (
                match Wire.parse_revocation_status body with
                | Ok true -> deny_with "capability has been revoked"
                | Ok false -> continue_after_revocation ()
                | Error e -> deny_with ("malformed revocation status: " ^ e))
              | Error _ ->
                (* Fail closed: cannot check revocation, do not honour. *)
                deny_with "revocation authority unreachable")
      end)

(* --- deciding without the wire ----------------------------------------------- *)

(* The full decision ladder for a context, minus the inbound access RPC
   and enforcement — what the differential oracle drives to prove that no
   cache level (L1, L2, attribute cache, coalescing) can change a
   decision.  Push mode decides from presented capabilities, which only
   exist on the wire, so it is out of scope here. *)
let decide_admitted t ctx k =
  match t.mode with
  | Pull { pdps; cache; call_timeout } -> pull_decide t ~pdps ~cache ~call_timeout ctx k
  | Sharded { tier; cache } -> tier_decide t ~tier ~cache ctx k
  | Agent pdp ->
    Pdp_service.evaluate_local pdp ctx (fun result ->
        k
          ( result,
            Provenance.make ~epoch:(Pdp_service.compilation_epoch pdp) ~at:(now t)
              Provenance.Local ))
  | Push _ ->
    k
      ( Decision.indeterminate "push-mode PEP decides from presented capabilities",
        Provenance.make ~at:(now t) Provenance.Capability )

(* A finished descent frees its slot; the oldest waiter (if any) takes it
   immediately — the admission queue drains in arrival order. *)
let release_slot t =
  t.inflight <- t.inflight - 1;
  match t.admission with
  | Some a when t.inflight < a.max_inflight -> (
    match Queue.take_opt t.waiting with
    | Some job ->
      t.inflight <- t.inflight + 1;
      job ()
    | None -> ())
  | Some _ | None -> ()

(* Bounded admission (overload protection): at most [max_inflight]
   concurrent ladder descents, at most [max_queue] requests parked behind
   them.  Anything beyond that is shed immediately — it fails closed with
   an Indeterminate (the enforcement layer denies it) rather than growing
   an unbounded backlog, so the latency of *admitted* requests stays
   bounded by the queue it can actually wait in. *)
let decide_explained t ctx k =
  let started = now t in
  let tag = trace_tag (tracer t) in
  let finish (result, (p : Provenance.t)) =
    Metrics.observe_exemplar
      (t.counters.h_decide p.Provenance.stage)
      (now t -. started) ~trace:tag ~at:(now t);
    k result p
  in
  match t.admission with
  | None -> decide_admitted t ctx finish
  | Some a ->
    let run () = decide_admitted t ctx (fun rp -> release_slot t; finish rp) in
    if t.inflight < a.max_inflight then begin
      t.inflight <- t.inflight + 1;
      run ()
    end
    else if Queue.length t.waiting < a.max_queue then begin
      let parked_at = now t in
      Queue.add
        (fun () ->
          Metrics.observe_exemplar t.counters.h_queue_wait (now t -. parked_at) ~trace:tag
            ~at:(now t);
          run ())
        t.waiting
    end
    else begin
      Metrics.inc t.counters.c_shed;
      Metrics.inc t.counters.c_shed_admission;
      Trace.record (tracer t) "pep:shed";
      finish (Decision.indeterminate shed_reason, Provenance.make ~at:(now t) Provenance.Shed)
    end

let decide t ctx k = decide_explained t ctx (fun result _prov -> k result)

(* --- service wiring --------------------------------------------------------------- *)

let create services ~node ~domain ~resource ?(content = "resource-content") ?audit
    ?encryption_key mode =
  let t =
    {
      services;
      node;
      domain;
      resource;
      content;
      audit = (match audit with Some a -> a | None -> Audit.create ());
      encryption_key;
      counters = make_counters (Service.metrics services) ~node;
      sf = Cache_hierarchy.Single_flight.create (Service.metrics services) ~node;
      mode;
      decision_trust = None;
      retry = None;
      stale_window = 0.0;
      offline = None;
      l2 = None;
      coalesce = true;
      admission = None;
      inflight = 0;
      waiting = Queue.create ();
    }
  in
  Service.serve services ~node ~service:"access" (fun ~caller:_ ~headers body reply ->
      Metrics.inc t.counters.c_requests;
      match Wire.parse_access_request body with
      | Error e -> reply (Dacs_ws.Soap.fault_body { Dacs_ws.Soap.code = "soap:Sender"; reason = e })
      | Ok (subject_attrs, action) ->
        let subject =
          match List.assoc_opt "subject-id" subject_attrs with
          | Some v -> Value.to_string v
          | None -> "anonymous"
        in
        let ctx = build_context t ~subject_attrs ~action in
        (* One span per enforcement, a child of the RPC server span; the
           decision machinery below it (PDP calls, cache events) hangs off
           this span via the ambient context. *)
        let tr = tracer t in
        let span = Trace.start_span tr "pep:enforce" in
        Trace.annotate span "node" t.node;
        Trace.annotate span "subject" subject;
        Trace.annotate span "action" action;
        let finish result (p : Provenance.t) =
          Trace.annotate span "decision" (Decision.decision_to_string result.Decision.decision);
          Trace.annotate span "stage" (Provenance.stage_name p.Provenance.stage);
          enforce t ~subject ~action ~provenance:p result (fun response ->
              Trace.finish tr span;
              reply response)
        in
        let saved = Trace.current tr in
        if Trace.enabled tr then Trace.set_current tr (Some (Trace.context span));
        (match t.mode with
        | Push { trusted_issuer; check_revocation; local_pdp } ->
          push_decide t ~trusted_issuer ~check_revocation ~local_pdp ~headers ~action ctx
            (fun result -> finish result (Provenance.make ~at:(now t) Provenance.Capability))
        | Pull _ | Sharded _ | Agent _ -> decide_explained t ctx finish);
        Trace.set_current tr saved);
  t
