lib/core/pep.mli: Audit Dacs_crypto Dacs_net Dacs_ws Decision_cache Pdp_service
