type algorithm =
  | Deny_overrides
  | Permit_overrides
  | First_applicable
  | Only_one_applicable
  | Ordered_deny_overrides
  | Ordered_permit_overrides

let name = function
  | Deny_overrides -> "deny-overrides"
  | Permit_overrides -> "permit-overrides"
  | First_applicable -> "first-applicable"
  | Only_one_applicable -> "only-one-applicable"
  | Ordered_deny_overrides -> "ordered-deny-overrides"
  | Ordered_permit_overrides -> "ordered-permit-overrides"

let of_name = function
  | "deny-overrides" -> Some Deny_overrides
  | "permit-overrides" -> Some Permit_overrides
  | "first-applicable" -> Some First_applicable
  | "only-one-applicable" -> Some Only_one_applicable
  | "ordered-deny-overrides" -> Some Ordered_deny_overrides
  | "ordered-permit-overrides" -> Some Ordered_permit_overrides
  | _ -> None

let all =
  [
    Deny_overrides;
    Permit_overrides;
    First_applicable;
    Only_one_applicable;
    Ordered_deny_overrides;
    Ordered_permit_overrides;
  ]

type child = {
  label : string;
  applicability : unit -> Target.outcome;
  evaluate : unit -> Decision.result;
}

(* Obligations propagate from children whose decision equals the final
   combined decision, in document order.  Every caller accumulates
   [evaluated] newest-first, hence the reversal here. *)
let collect decision results =
  List.concat_map
    (fun (r : Decision.result) ->
      if Decision.equal_decision r.Decision.decision decision then r.Decision.obligations else [])
    (List.rev results)

let deny_overrides children =
  (* Short-circuit on the first Deny; an Indeterminate is a potential
     Deny and therefore also decides immediately. *)
  let rec go permits evaluated = function
    | [] ->
      if permits <> [] then
        { Decision.decision = Decision.Permit; obligations = collect Decision.Permit evaluated }
      else Decision.not_applicable
    | c :: rest -> (
      let r = c.evaluate () in
      let evaluated = r :: evaluated in
      match r.Decision.decision with
      | Decision.Deny -> { r with Decision.obligations = collect Decision.Deny evaluated }
      | Decision.Indeterminate e ->
        Decision.indeterminate (Printf.sprintf "%s: %s (treated as potential deny)" c.label e)
      | Decision.Permit -> go (r :: permits) evaluated rest
      | Decision.Not_applicable -> go permits evaluated rest)
  in
  go [] [] children

let permit_overrides children =
  let rec go indeterminate denies evaluated = function
    | [] -> (
      match (indeterminate, denies) with
      | Some e, _ -> Decision.indeterminate e
      | None, _ :: _ ->
        { Decision.decision = Decision.Deny; obligations = collect Decision.Deny evaluated }
      | None, [] -> Decision.not_applicable)
    | c :: rest -> (
      let r = c.evaluate () in
      let evaluated = r :: evaluated in
      match r.Decision.decision with
      | Decision.Permit -> { r with Decision.obligations = collect Decision.Permit evaluated }
      | Decision.Indeterminate e ->
        let e = Printf.sprintf "%s: %s" c.label e in
        go (Some (Option.value indeterminate ~default:e)) denies evaluated rest
      | Decision.Deny -> go indeterminate (r :: denies) evaluated rest
      | Decision.Not_applicable -> go indeterminate denies evaluated rest)
  in
  go None [] [] children

let first_applicable children =
  let rec go = function
    | [] -> Decision.not_applicable
    | c :: rest -> (
      let r = c.evaluate () in
      match r.Decision.decision with
      | Decision.Permit | Decision.Deny -> r
      | Decision.Indeterminate e -> Decision.indeterminate (Printf.sprintf "%s: %s" c.label e)
      | Decision.Not_applicable -> go rest)
  in
  go children

let only_one_applicable children =
  let rec scan applicable = function
    | [] -> (
      match applicable with
      | [] -> Decision.not_applicable
      | [ c ] -> c.evaluate ()
      | cs ->
        Decision.indeterminate
          (Printf.sprintf "more than one applicable policy: %s"
             (String.concat ", " (List.rev_map (fun c -> c.label) cs))))
    | c :: rest -> (
      match c.applicability () with
      | Target.Match ->
        (* Two applicable children already decide the outcome. *)
        if applicable <> [] then
          Decision.indeterminate
            (Printf.sprintf "more than one applicable policy: %s, %s"
               (String.concat ", " (List.rev_map (fun c -> c.label) applicable))
               c.label)
        else scan (c :: applicable) rest
      | Target.No_match -> scan applicable rest
      | Target.Indeterminate_match e ->
        Decision.indeterminate (Printf.sprintf "%s target: %s" c.label e))
  in
  scan [] children

let combine algorithm children =
  match algorithm with
  | Deny_overrides | Ordered_deny_overrides -> deny_overrides children
  | Permit_overrides | Ordered_permit_overrides -> permit_overrides children
  | First_applicable -> first_applicable children
  | Only_one_applicable -> only_one_applicable children
