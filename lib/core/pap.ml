module Xml = Dacs_xml.Xml
module Engine = Dacs_net.Engine
module Service = Dacs_ws.Service
module Policy = Dacs_policy.Policy
module Compiled = Dacs_policy.Compiled
module Decision = Dacs_policy.Decision
module Context = Dacs_policy.Context
module Value = Dacs_policy.Value
module Metrics = Dacs_telemetry.Metrics

type t = {
  services : Service.t;
  node : Dacs_net.Net.node_id;
  name : string;
  c_queries : Metrics.counter;
  c_accepted : Metrics.counter;
  c_rejected : Metrics.counter;
  mutable admin_policy : Policy.child option;
  mutable root : Policy.child option;
  mutable compiled : Compiled.t option;  (* kept in step with [root] *)
  mutable version : int;
  mutable subscribers : Dacs_net.Net.node_id list;
  mutable update_filter : Policy.child -> bool;
  mutable update_transform : Policy.child -> Policy.child;
  mutable last_region : Dacs_policy.Delta.t;
  mutable on_region : Dacs_policy.Delta.t -> unit;
}

let node t = t.node
let name t = t.name
let version t = t.version
let current t = t.root
let compiled t = t.compiled
let compilation_epoch t = match t.compiled with None -> 0 | Some c -> Compiled.epoch c
let subscribers t = t.subscribers

let set_admin_policy t p = t.admin_policy <- Some p
let set_update_filter t f = t.update_filter <- f
let set_update_transform t f = t.update_transform <- f
let last_region t = t.last_region
let on_publish_region t f = t.on_region <- f

let queries_served t = Metrics.counter_value t.c_queries
let updates_accepted t = Metrics.counter_value t.c_accepted
let updates_rejected t = Metrics.counter_value t.c_rejected

(* The admin policy decides whether [caller] may update this PAP. *)
let admin_permits t ~caller =
  match t.admin_policy with
  | None -> false
  | Some policy ->
    let ctx =
      Context.make
        ~subject:[ ("subject-id", Value.String caller) ]
        ~resource:[ ("resource-id", Value.String t.name) ]
        ~action:[ ("action-id", Value.String "policy-update") ]
        ()
    in
    Decision.is_permit (Policy.evaluate_child ctx policy)

let push_to_subscribers t =
  match t.root with
  | None -> ()
  | Some root ->
    let body = Wire.policy_update ~version:t.version root in
    List.iter
      (fun child ->
        Service.call t.services ~src:t.node ~dst:child ~service:"policy-update" body (fun _ -> ()))
      t.subscribers

let accept_update t child =
  let before = t.root in
  t.root <- Some child;
  (* Incremental recompilation: unchanged leaf policies keep their
     compiled form; the epoch moves only when the tree actually changed,
     so PDPs can cheaply detect a semantic update. *)
  t.compiled <-
    Some
      (match t.compiled with
      | None -> Compiled.compile child
      | Some prev -> Compiled.recompile prev child);
  t.version <- t.version + 1;
  Metrics.inc t.c_accepted;
  (* Change-impact analysis over the same structural diff recompilation
     reuses: a no-op publish yields an Empty region (and a preserved
     compilation epoch), a bounded edit yields the zones the
     invalidation plane purges instead of flushing VO-wide. *)
  t.last_region <- Dacs_policy.Delta.between before (Some child);
  t.on_region t.last_region;
  push_to_subscribers t

let publish t child = accept_update t child

let lookup t id =
  match t.root with
  | None -> None
  | Some root ->
    if Policy.child_id root = id then Some root
    else begin
      match root with
      | Policy.Inline_set s ->
        List.find_opt (fun c -> Policy.child_id c = id) s.Policy.children
      | Policy.Inline_policy _ | Policy.Policy_ref _ -> None
    end

let create services ~node ~name ?admin_policy ?root () =
  let metrics = Service.metrics services in
  let own ?help n = Metrics.counter metrics ?help ~labels:[ ("node", node) ] n in
  let t =
    {
      services;
      node;
      name;
      c_queries = own "pap_queries_total" ~help:"Policy queries served";
      c_accepted = own "pap_updates_accepted_total" ~help:"Policy updates accepted";
      c_rejected = own "pap_updates_rejected_total" ~help:"Policy updates rejected";
      admin_policy;
      root;
      compiled = Option.map Compiled.compile root;
      version = (match root with None -> 0 | Some _ -> 1);
      subscribers = [];
      update_filter = (fun _ -> true);
      update_transform = (fun c -> c);
      last_region = Dacs_policy.Delta.empty;
      on_region = (fun _ -> ());
    }
  in
  Service.serve services ~node ~service:"policy-query" (fun ~caller:_ ~headers:_ body reply ->
      Metrics.inc t.c_queries;
      match Wire.parse_policy_query body with
      | Error e -> reply (Dacs_ws.Soap.fault_body { Dacs_ws.Soap.code = "soap:Sender"; reason = e })
      | Ok (_scope, known_version) ->
        if known_version >= t.version then reply (Wire.policy_response ~version:t.version None)
        else reply (Wire.policy_response ~version:t.version t.root));
  Service.serve services ~node ~service:"policy-update" (fun ~caller ~headers:_ body reply ->
      match Wire.parse_policy_update body with
      | Error e -> reply (Dacs_ws.Soap.fault_body { Dacs_ws.Soap.code = "soap:Sender"; reason = e })
      | Ok (_remote_version, child) ->
        (* A push from a syndicating parent we subscribed to is accepted
           subject to the local filter; any other caller needs the admin
           policy's blessing. *)
        let allowed = admin_permits t ~caller in
        if not allowed then begin
          Metrics.inc t.c_rejected;
          reply
            (Dacs_ws.Soap.fault_body
               { Dacs_ws.Soap.code = "soap:Receiver"; reason = "policy update not authorised" })
        end
        else if not (t.update_filter child) then begin
          Metrics.inc t.c_rejected;
          reply
            (Dacs_ws.Soap.fault_body
               { Dacs_ws.Soap.code = "soap:Receiver"; reason = "update rejected by local constraints" })
        end
        else begin
          accept_update t (t.update_transform child);
          reply (Xml.element "PolicyUpdateAck" ~attrs:[ ("Version", string_of_int t.version) ])
        end);
  Service.serve services ~node ~service:"subscribe" (fun ~caller ~headers:_ _body reply ->
      if not (List.mem caller t.subscribers) then t.subscribers <- caller :: t.subscribers;
      reply (Xml.element "SubscribeAck"));
  t

let subscribe_local t ~child =
  if not (List.mem child t.subscribers) then t.subscribers <- child :: t.subscribers

let enable_anti_entropy t ~parent ~period =
  let engine = Dacs_net.Net.engine (Service.net t.services) in
  (* Track the parent's version separately: local accepts bump our own
     version counter, so comparing against [t.version] would loop. *)
  let parent_version = ref 0 in
  let rec poll () =
    Service.call t.services ~src:t.node ~dst:parent ~service:"policy-query"
      (Wire.policy_query ~scope:"" ~known_version:!parent_version)
      (fun result ->
        (match result with
        | Ok body -> (
          match Wire.parse_policy_response body with
          | Ok (version, Some child) when version > !parent_version ->
            parent_version := version;
            if t.update_filter child then accept_update t (t.update_transform child)
          | Ok (version, None) -> parent_version := max !parent_version version
          | Ok _ | Error _ -> ())
        | Error _ -> ());
        Engine.schedule engine ~delay:period poll)
  in
  poll ()
