lib/policy/rule.ml: Decision Expr Format Printf Target
