lib/policy/validate.ml: Combine Expr Hashtbl List Policy Printf Rule Target
