(** Wire vocabulary of the authorisation protocol.

    The XML bodies exchanged between components: access requests,
    authorisation decision queries/responses, attribute queries, policy
    fetches/updates, capability requests and revocation checks.  One
    module so every component agrees on syntax — the interoperability
    requirement of §3.2. *)

module Xml = Dacs_xml.Xml

(** {1 Access requests (client → PEP)} *)

val access_request : subject:(string * Dacs_policy.Value.t) list -> action:string -> Xml.t
(** The client names itself and the action; the PEP fills in the resource
    it guards and the environment. *)

val parse_access_request : Xml.t -> ((string * Dacs_policy.Value.t) list * string, string) result

(** {1 Authorisation decision queries (PEP → PDP)} *)

val authz_query : Dacs_policy.Context.t -> Xml.t
val parse_authz_query : Xml.t -> (Dacs_policy.Context.t, string) result

val authz_response : ?epoch:int -> Dacs_policy.Decision.result -> Xml.t
(** [epoch] (default 0) is the deciding PDP's compilation epoch; positive
    epochs ride the response as provenance, 0 is omitted so frames from
    interpreted PDPs are unchanged. *)

val authz_response_epoch : Xml.t -> int
(** The compilation epoch carried by a (possibly signed) authorisation
    response — 0 when absent or malformed.  Tolerant by design: a
    pre-epoch peer simply reports 0. *)

val parse_authz_response : Xml.t -> (Dacs_policy.Decision.result, string) result

val signed_authz_response :
  ?epoch:int ->
  key:Dacs_crypto.Rsa.private_key ->
  cert:Dacs_crypto.Cert.t ->
  Dacs_policy.Decision.result ->
  Xml.t
(** Decision response carrying the PDP's certificate and a signature over
    the canonical response — §3.2: "enforcement points need to be sure
    that the authorisation decision response comes from their trusted
    decision point". *)

val verify_signed_authz_response :
  trust:Dacs_crypto.Cert.Trust_store.t ->
  now:float ->
  Xml.t ->
  (Dacs_policy.Decision.result * Dacs_crypto.Cert.t, string) result
(** Accepts only a well-signed response whose certificate is trusted
    (directly or via a one-level chain to a stored root) and valid at
    [now]; returns the decision and the signer. *)

(** {1 Attribute queries (PDP → PIP)} *)

val attribute_query :
  category:Dacs_policy.Context.category -> attribute_id:string -> subject:string -> Xml.t

val parse_attribute_query :
  Xml.t -> (Dacs_policy.Context.category * string * string, string) result

val attribute_result : Dacs_policy.Value.bag -> Xml.t
val parse_attribute_result : Xml.t -> (Dacs_policy.Value.bag, string) result

val attribute_subscribe : unit -> Xml.t
(** PDP -> PIP: register the caller for attribute-invalidation pushes.
    Batched attribute queries need no frame of their own: a multi-part
    B/BT envelope whose parts are ordinary {!attribute_query} bodies is
    one attribute-resolution round trip. *)

val parse_attribute_subscribe : Xml.t -> (unit, string) result

val attribute_invalidate : subject:string -> attribute_id:string -> Xml.t
(** PIP -> subscribed PDPs: [remove_subject_attribute] happened — drop
    any cached bag for this (subject, attribute). *)

val parse_attribute_invalidate : Xml.t -> (string * string, string) result

(** {1 Shared decision cache (PEP <-> L2, L2 <-> L2 syndication)} *)

val cache_lookup : key:string -> Xml.t
val parse_cache_lookup : Xml.t -> (string, string) result

val cache_answer : Dacs_policy.Decision.result option -> Xml.t
(** [None] encodes a miss, [Some r] a fresh hit carrying the decision. *)

val parse_cache_answer : Xml.t -> (Dacs_policy.Decision.result option, string) result

val cache_put : ?sent_at:float -> key:string -> Dacs_policy.Decision.result -> Xml.t
(** [sent_at] stamps the frame with the sender's clock so a receiver
    that purged after this put left the sender can reject it instead of
    resurrecting a stale entry (the put/invalidate race). *)

val parse_cache_put : Xml.t -> (string * Dacs_policy.Decision.result * float option, string) result

val cache_invalidate : epoch:int -> string option -> Xml.t
(** Full purge when the key is [None], single-entry drop otherwise.
    [epoch] is the sender's invalidation-round counter after applying the
    purge, letting receivers deduplicate against anti-entropy polls. *)

val parse_cache_invalidate : Xml.t -> (int * string option, string) result

val cache_region : epoch:int -> Dacs_policy.Delta.t -> Xml.t
(** Targeted purge: the change-impact region of a policy publish, pushed
    down the syndication tree.  [epoch] is the sender's invalidation
    epoch after applying the purge locally, so receivers that get the
    push do not re-purge on their next anti-entropy poll — and receivers
    that miss it do. *)

val parse_cache_region : Xml.t -> (int * Dacs_policy.Delta.t, string) result

val cache_sync : known_epoch:int -> Xml.t
(** Anti-entropy poll: "my view of your invalidation epoch is N". *)

val parse_cache_sync : Xml.t -> (int, string) result

val cache_epoch : epoch:int -> Xml.t
val parse_cache_epoch : Xml.t -> (int, string) result

(** {1 Policy distribution (PDP/PAP, PAP/PAP syndication)} *)

val policy_query : scope:string -> known_version:int -> Xml.t
val parse_policy_query : Xml.t -> (string * int, string) result

val policy_response : version:int -> Dacs_policy.Policy.child option -> Xml.t
(** [None] means "your version is current". *)

val parse_policy_response : Xml.t -> (int * Dacs_policy.Policy.child option, string) result

val policy_update : version:int -> Dacs_policy.Policy.child -> Xml.t
val parse_policy_update : Xml.t -> (int * Dacs_policy.Policy.child, string) result

(** {1 Offline event logs (domain ↔ domain log anti-entropy)}

    Frames for the eventually consistent offline mode: each domain keeps
    a hash-linked, HMAC-signed event log, and on heal exchanges log
    suffixes keyed by vector-clock frontiers.  The wire layer is
    deliberately agnostic about event semantics — the kind is a string
    and the payload a (name, value) field list — so the vocabulary does
    not depend on the offline engine (which owns the typed view and the
    chain/signature checks). *)

type log_event = {
  le_author : string;  (** originating domain *)
  le_seq : int;  (** 1-based position in the author's chain *)
  le_at : float;  (** author's virtual-clock timestamp *)
  le_epoch : int;  (** author's offline epoch when appended *)
  le_frontier : (string * int) list;  (** author's vector clock, self included *)
  le_kind : string;
  le_fields : (string * string) list;
  le_digest : string;  (** chain digest, raw bytes *)
  le_tag : string;  (** HMAC-SHA256 over the digest, raw bytes *)
}

val log_event : log_event -> Xml.t
val parse_log_event : Xml.t -> (log_event, string) result

val log_event_unsigned : log_event -> Xml.t
(** The event element {e without} its digest and tag — the canonical
    byte string ([Xml.to_string] of this element) that the hash chain
    links and the HMAC authenticates.  Both sides must derive it the
    same way, which is why it lives here next to the encoding. *)

val log_sync_request : frontier:(string * int) list -> Xml.t
(** Anti-entropy poll: "this is my frontier — send what I lack." *)

val parse_log_sync_request : Xml.t -> ((string * int) list, string) result

val log_sync_response : head:string -> log_event list -> Xml.t
(** [head] is the responder's own chain head (raw bytes), an integrity
    cross-check for the requester. *)

val parse_log_sync_response : Xml.t -> (string * log_event list, string) result

(** {1 Capabilities (client → capability service, push model)} *)

val capability_request :
  subject:(string * Dacs_policy.Value.t) list -> pairs:(string * string) list -> Xml.t
(** [pairs] are (resource, action) the client wants capabilities for. *)

val parse_capability_request :
  Xml.t -> ((string * Dacs_policy.Value.t) list * (string * string) list, string) result

val revocation_check : assertion_id:string -> Xml.t
val parse_revocation_check : Xml.t -> (string, string) result
val revocation_status : revoked:bool -> Xml.t
val parse_revocation_status : Xml.t -> (bool, string) result

(** {1 Access responses (PEP → client)} *)

val access_granted : ?content:string -> ?encrypted:bool -> unit -> Xml.t
val access_denied : reason:string -> Xml.t

type access_outcome =
  | Granted of { content : string; encrypted : bool }
  | Denied of string

val parse_access_outcome : Xml.t -> (access_outcome, string) result
