lib/core/domain.mli: Audit Dacs_crypto Dacs_net Dacs_policy Dacs_rbac Dacs_ws Decision_cache Idp Pap Pdp_service Pep Pip
