lib/crypto/hmac.mli:
