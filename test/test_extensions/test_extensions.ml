(* Tests for the §3.2 extensions: component discovery with lease-based
   liveness, proactive PEP rebinding, and authenticated (signed) decision
   responses. *)

module Xml = Dacs_xml.Xml
module Value = Dacs_policy.Value
module Decision = Dacs_policy.Decision
module Policy = Dacs_policy.Policy
module Rule = Dacs_policy.Rule
module Target = Dacs_policy.Target
module Combine = Dacs_policy.Combine
module Net = Dacs_net.Net
module Engine = Dacs_net.Engine
module Service = Dacs_ws.Service
module Rsa = Dacs_crypto.Rsa
module Cert = Dacs_crypto.Cert
module Rng = Dacs_crypto.Rng
open Dacs_core

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let fresh () =
  let net = Net.create () in
  let services = Service.create (Dacs_net.Rpc.create net) in
  (net, services)

let doctor_subject user = [ ("subject-id", Value.String user); ("role", Value.String "doctor") ]

let doctor_read_policy resource =
  Policy.Inline_policy
    (Policy.make ~id:"p" ~rule_combining:Combine.First_applicable
       [
         Rule.permit
           ~target:
             Target.(
               any |> subject_is "role" "doctor" |> resource_is "resource-id" resource
               |> action_is "action-id" "read")
           "permit";
         Rule.deny "deny";
       ])

(* --- discovery registry ------------------------------------------------ *)

let test_registry_register_and_lookup () =
  let net, services = fresh () in
  Net.add_node net "registry";
  Net.add_node net "pdp1";
  Net.add_node net "pdp2";
  let reg = Discovery.create services ~node:"registry" ~lease:10.0 () in
  let register src =
    Service.call services ~src ~dst:"registry" ~service:"register"
      (Discovery.register_body ~kind:"pdp" ~node:src)
      (fun _ -> ())
  in
  register "pdp1";
  register "pdp2";
  Net.run net;
  check (Alcotest.list string_) "both listed, registration order" [ "pdp1"; "pdp2" ]
    (Discovery.lookup reg ~kind:"pdp");
  check (Alcotest.list string_) "other kinds empty" [] (Discovery.lookup reg ~kind:"pap");
  check int_ "registrations counted" 2 (Discovery.registrations reg)

let test_registry_lease_expiry () =
  let net, services = fresh () in
  Net.add_node net "registry";
  Net.add_node net "pdp1";
  let reg = Discovery.create services ~node:"registry" ~lease:10.0 () in
  Service.call services ~src:"pdp1" ~dst:"registry" ~service:"register"
    (Discovery.register_body ~kind:"pdp" ~node:"pdp1")
    (fun _ -> ());
  Net.run net;
  check int_ "listed" 1 (List.length (Discovery.lookup reg ~kind:"pdp"));
  (* Jump past the lease without renewal: gone. *)
  Engine.schedule (Net.engine net) ~delay:11.0 ignore;
  Net.run net;
  check int_ "expired" 0 (List.length (Discovery.lookup reg ~kind:"pdp"))

let test_registry_rejects_proxy_advertisement () =
  let net, services = fresh () in
  Net.add_node net "registry";
  Net.add_node net "mallory";
  let reg = Discovery.create services ~node:"registry" ~lease:10.0 () in
  let got = ref None in
  Service.call services ~src:"mallory" ~dst:"registry" ~service:"register"
    (Discovery.register_body ~kind:"pdp" ~node:"somebody-else")
    (fun r -> got := Some r);
  Net.run net;
  (match !got with
  | Some (Error (Service.Fault _)) -> ()
  | _ -> Alcotest.fail "expected a fault for third-party advertisement");
  check int_ "nothing registered" 0 (List.length (Discovery.lookup reg ~kind:"pdp"))

let test_discover_service () =
  let net, services = fresh () in
  Net.add_node net "registry";
  Net.add_node net "pdp1";
  Net.add_node net "pep";
  ignore (Discovery.create services ~node:"registry" ~lease:10.0 ());
  Service.call services ~src:"pdp1" ~dst:"registry" ~service:"register"
    (Discovery.register_body ~kind:"pdp" ~node:"pdp1")
    (fun _ -> ());
  Net.run net;
  let got = ref None in
  Service.call services ~src:"pep" ~dst:"registry" ~service:"discover"
    (Discovery.discover_body ~kind:"pdp")
    (fun r -> got := Some r);
  Net.run net;
  match !got with
  | Some (Ok body) -> (
    match Discovery.parse_endpoints body with
    | Ok eps -> check (Alcotest.list string_) "endpoints" [ "pdp1" ] eps
    | Error e -> Alcotest.fail e)
  | _ -> Alcotest.fail "no reply"

let test_advertise_keeps_entry_alive () =
  let net, services = fresh () in
  Net.add_node net "registry";
  Net.add_node net "pdp1";
  let reg = Discovery.create services ~node:"registry" ~lease:10.0 () in
  Discovery.advertise reg ~services ~node:"pdp1" ~kind:"pdp" ();
  (* Far beyond the lease, the renewals keep the entry live. *)
  Net.run ~until:60.0 net;
  check int_ "still listed" 1 (List.length (Discovery.lookup reg ~kind:"pdp"));
  (* Crash the advertiser: its renewals are dropped and the lease lapses. *)
  Net.crash net "pdp1";
  Net.run ~until:85.0 net;
  check int_ "lapsed after crash" 0 (List.length (Discovery.lookup reg ~kind:"pdp"));
  (* Recovery resumes the heartbeat loop. *)
  Net.recover net "pdp1";
  Net.run ~until:100.0 net;
  check int_ "re-listed after recovery" 1 (List.length (Discovery.lookup reg ~kind:"pdp"))

let test_auto_rebind_end_to_end () =
  (* Two PDP replicas advertise; the PEP starts bound to a bogus endpoint
     and is rebound by discovery; when the first replica crashes, the PEP
     is rebound to the survivor without keeping the dead one. *)
  let net, services = fresh () in
  List.iter (Net.add_node net) [ "registry"; "pdp1"; "pdp2"; "pep"; "client"; "bogus" ];
  let reg = Discovery.create services ~node:"registry" ~lease:4.0 () in
  let policy = doctor_read_policy "r" in
  ignore (Pdp_service.create services ~node:"pdp1" ~name:"pdp1" ~root:policy ());
  ignore (Pdp_service.create services ~node:"pdp2" ~name:"pdp2" ~root:policy ());
  Discovery.advertise reg ~services ~node:"pdp1" ~kind:"pdp" ();
  Discovery.advertise reg ~services ~node:"pdp2" ~kind:"pdp" ();
  let pep =
    Pep.create services ~node:"pep" ~domain:"d" ~resource:"r"
      (Pep.Pull { pdps = [ "bogus" ]; cache = None; call_timeout = 0.3 })
  in
  Discovery.auto_rebind reg ~pep ~kind:"pdp" ~period:2.0 ();
  let client = Client.create services ~node:"client" ~subject:(doctor_subject "alice") in
  let outcomes = ref [] in
  let request_at t =
    Engine.schedule (Net.engine net) ~delay:t (fun () ->
        Client.request client ~pep:"pep" ~action:"read" ~timeout:5.0 (fun r ->
            outcomes := (t, r) :: !outcomes))
  in
  request_at 5.0;
  (* By t=5 the PEP has been rebound away from "bogus". *)
  Engine.schedule (Net.engine net) ~delay:8.0 (fun () -> Net.crash net "pdp1");
  request_at 20.0;
  (* By t=20 the dead replica's lease has lapsed and rebinding dropped it. *)
  Net.run ~until:30.0 net;
  Engine.schedule (Net.engine net) ~delay:0.1 ignore;
  let granted t =
    match List.assoc_opt t !outcomes with
    | Some (Ok (Wire.Granted _)) -> true
    | _ -> false
  in
  check bool_ "rebound from bogus endpoint" true (granted 5.0);
  check bool_ "served after replica crash" true (granted 20.0);
  check (Alcotest.list string_) "dead replica dropped from the list" [ "pdp2" ]
    (Pep.pull_pdps pep)

(* --- signed decisions ------------------------------------------------------ *)

let signed_setup () =
  let net, services = fresh () in
  let rng = Rng.create 31L in
  let ca = Rsa.generate rng ~bits:512 in
  let ca_cert = Cert.self_signed ca ~subject:"cn=dacs-ca" ~serial:1 ~not_before:0.0 ~not_after:1e9 in
  let pdp_keys = Rsa.generate rng ~bits:512 in
  let pdp_cert =
    Cert.issue ~ca_key:ca.Rsa.private_ ~ca_cert ~subject:"cn=pdp" ~public_key:pdp_keys.Rsa.public
      ~serial:2 ~not_before:0.0 ~not_after:1e9
  in
  let trust = Cert.Trust_store.add Cert.Trust_store.empty ca_cert in
  (net, services, trust, pdp_keys, pdp_cert, ca)

let test_wire_signed_response_roundtrip () =
  let _net, _services, trust, pdp_keys, pdp_cert, _ = signed_setup () in
  let result = Decision.with_obligations Decision.permit [ Dacs_policy.Obligation.audit ] in
  let body = Wire.signed_authz_response ~key:pdp_keys.Rsa.private_ ~cert:pdp_cert result in
  (match Wire.verify_signed_authz_response ~trust ~now:1.0 body with
  | Ok (r, signer) ->
    check bool_ "permit" true (Decision.is_permit r);
    check int_ "obligations" 1 (List.length r.Decision.obligations);
    check string_ "signer" "cn=pdp" signer.Cert.subject
  | Error e -> Alcotest.fail e);
  (* Tampering with the inner decision breaks the signature. *)
  let tampered =
    match body with
    | Xml.Element e ->
      Xml.Element
        {
          e with
          Xml.children =
            List.map
              (fun c ->
                if Xml.local_name (Xml.tag c) = "AuthzResponse" then
                  Wire.authz_response Decision.deny
                else c)
              e.Xml.children;
        }
    | n -> n
  in
  check bool_ "tamper rejected" true
    (Result.is_error (Wire.verify_signed_authz_response ~trust ~now:1.0 tampered));
  (* Unsigned response rejected outright. *)
  check bool_ "unsigned rejected" true
    (Result.is_error (Wire.verify_signed_authz_response ~trust ~now:1.0 (Wire.authz_response result)))

let test_wire_signed_response_untrusted_signer () =
  let _net, _services, trust, _, _, _ = signed_setup () in
  let rogue = Rsa.generate (Rng.create 77L) ~bits:512 in
  let rogue_cert =
    Cert.self_signed rogue ~subject:"cn=rogue-pdp" ~serial:9 ~not_before:0.0 ~not_after:1e9
  in
  let body = Wire.signed_authz_response ~key:rogue.Rsa.private_ ~cert:rogue_cert Decision.permit in
  match Wire.verify_signed_authz_response ~trust ~now:1.0 body with
  | Error e -> check bool_ "names the signer" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "rogue signer must be rejected"

let test_pep_requires_signed_decisions () =
  let net, services, trust, pdp_keys, pdp_cert, _ = signed_setup () in
  List.iter (Net.add_node net) [ "signing-pdp"; "plain-pdp"; "pep"; "client" ];
  let policy = doctor_read_policy "r" in
  ignore
    (Pdp_service.create services ~node:"signing-pdp" ~name:"s" ~root:policy
       ~signer:(pdp_keys.Rsa.private_, pdp_cert) ());
  ignore (Pdp_service.create services ~node:"plain-pdp" ~name:"p" ~root:policy ());
  let pep =
    Pep.create services ~node:"pep" ~domain:"d" ~resource:"r"
      (Pep.Pull { pdps = [ "signing-pdp" ]; cache = None; call_timeout = 0.5 })
  in
  Pep.require_signed_decisions pep trust;
  let client = Client.create services ~node:"client" ~subject:(doctor_subject "alice") in
  let got = ref None in
  Client.request client ~pep:"pep" ~action:"read" (fun r -> got := Some r);
  Net.run net;
  (match !got with
  | Some (Ok (Wire.Granted _)) -> ()
  | _ -> Alcotest.fail "signed decision should be accepted");
  (* Rebind to an unsigning PDP: its answers are no longer acceptable. *)
  Pep.set_pull_pdps pep [ "plain-pdp" ];
  Client.request client ~pep:"pep" ~action:"read" (fun r -> got := Some r);
  Net.run net;
  match !got with
  | Some (Ok (Wire.Denied reason)) ->
    check bool_ "explains" true (String.length reason > 0)
  | _ -> Alcotest.fail "unsigned decision must be rejected when signatures are required"

let test_signed_decisions_without_requirement () =
  (* A PEP without the requirement still accepts plain responses —
     and also still accepts signed ones?  No: a signed response is a
     different element; the plain parser rejects it, so deployments must
     be consistent.  This documents that behaviour. *)
  let net, services, _trust, pdp_keys, pdp_cert, _ = signed_setup () in
  List.iter (Net.add_node net) [ "signing-pdp"; "pep"; "client" ];
  ignore
    (Pdp_service.create services ~node:"signing-pdp" ~name:"s" ~root:(doctor_read_policy "r")
       ~signer:(pdp_keys.Rsa.private_, pdp_cert) ());
  ignore
    (Pep.create services ~node:"pep" ~domain:"d" ~resource:"r"
       (Pep.Pull { pdps = [ "signing-pdp" ]; cache = None; call_timeout = 0.5 }));
  let client = Client.create services ~node:"client" ~subject:(doctor_subject "alice") in
  let got = ref None in
  Client.request client ~pep:"pep" ~action:"read" (fun r -> got := Some r);
  Net.run net;
  match !got with
  | Some (Ok (Wire.Denied _)) -> ()
  | _ -> Alcotest.fail "mismatched signing configuration should fail closed"


(* --- networked trust negotiation --------------------------------------------- *)

let negotiation_setup ~server_credentials ~requirement =
  let net, services = fresh () in
  List.iter (Net.add_node net) [ "traust"; "stranger"; "pep" ];
  let keys = Rsa.generate (Rng.create 41L) ~bits:512 in
  let server =
    Negotiation_service.create services ~node:"traust" ~issuer:"traust" ~keypair:keys
      ~credentials:server_credentials
      ~requirement_for:(fun ~resource:_ ~action:_ -> requirement)
      ()
  in
  (net, services, server)

let test_negotiation_service_immediate_grant () =
  let net, services, server =
    negotiation_setup ~server_credentials:[] ~requirement:[ [ "member-card" ] ]
  in
  let got = ref None in
  Negotiation_service.negotiate server ~services ~client_node:"stranger"
    ~credentials:[ Negotiation.unprotected "member-card" ]
    ~subject:[ ("subject-id", Value.String "zoe") ]
    ~resource:"r" ~action:"read" (fun o -> got := Some o);
  Net.run net;
  match !got with
  | Some { Negotiation_service.granted = Some a; rounds; messages } ->
    check int_ "one round" 1 rounds;
    check int_ "two messages" 2 messages;
    check bool_ "assertion verifies" true
      (Dacs_saml.Assertion.verify (Negotiation_service.public_key server) a);
    check bool_ "permits the pair" true (Dacs_saml.Assertion.permits a ~resource:"r" ~action:"read");
    check string_ "subject carried" "zoe" a.Dacs_saml.Assertion.subject;
    check int_ "session cleaned up" 0 (Negotiation_service.sessions server)
  | _ -> Alcotest.fail "expected a grant"

let test_negotiation_service_iterative () =
  (* Client releases clearance only after the server's accreditation,
     which the server releases only after the membership card. *)
  let client_creds =
    [
      Negotiation.unprotected "membership";
      Negotiation.protected_by "clearance" [ "accreditation" ];
    ]
  in
  let server_creds = [ Negotiation.protected_by "accreditation" [ "membership" ] ] in
  let net, services, server =
    negotiation_setup ~server_credentials:server_creds ~requirement:[ [ "clearance" ] ]
  in
  let got = ref None in
  Negotiation_service.negotiate server ~services ~client_node:"stranger"
    ~credentials:client_creds
    ~subject:[ ("subject-id", Value.String "zoe") ]
    ~resource:"r" ~action:"read" (fun o -> got := Some o);
  Net.run net;
  match !got with
  | Some { Negotiation_service.granted = Some _; rounds; messages } ->
    check int_ "two rounds" 2 rounds;
    check int_ "four messages" 4 messages
  | _ -> Alcotest.fail "expected an iterative grant"

let test_negotiation_service_failure () =
  (* The client cannot produce the required credential: negotiation
     terminates without a grant and without looping. *)
  let net, services, server =
    negotiation_setup ~server_credentials:[] ~requirement:[ [ "golden-ticket" ] ]
  in
  let got = ref None in
  Negotiation_service.negotiate server ~services ~client_node:"stranger"
    ~credentials:[ Negotiation.unprotected "irrelevant" ]
    ~subject:[] ~resource:"r" ~action:"read" (fun o -> got := Some o);
  Net.run net;
  match !got with
  | Some { Negotiation_service.granted = None; rounds; _ } ->
    check bool_ "terminates fast" true (rounds <= 2)
  | _ -> Alcotest.fail "expected failure"

let test_negotiation_capability_works_at_pep () =
  (* The negotiated capability is honoured by a push-mode PEP that trusts
     the negotiation server as an issuer — trust established from zero. *)
  let client_creds = [ Negotiation.unprotected "project-badge" ] in
  let net, services, server =
    negotiation_setup ~server_credentials:[] ~requirement:[ [ "project-badge" ] ]
  in
  ignore
    (Pep.create services ~node:"pep" ~domain:"d" ~resource:"dataset" ~content:"payload"
       (Pep.Push
          {
            trusted_issuer =
              (fun i -> if i = "traust" then Some (Negotiation_service.public_key server) else None);
            check_revocation = None;
            local_pdp = None;
          }));
  let outcome = ref None in
  Negotiation_service.negotiate server ~services ~client_node:"stranger"
    ~credentials:client_creds
    ~subject:[ ("subject-id", Value.String "zoe") ]
    ~resource:"dataset" ~action:"read" (fun o ->
      match o.Negotiation_service.granted with
      | None -> Alcotest.fail "negotiation should grant"
      | Some assertion ->
        (* Present the assertion at the PEP exactly as a capability. *)
        Service.call services ~src:"stranger" ~dst:"pep" ~service:"access"
          ~headers:[ Dacs_saml.Assertion.to_xml assertion ]
          (Wire.access_request
             ~subject:[ ("subject-id", Value.String "zoe") ]
             ~action:"read")
          (fun r -> outcome := Some r));
  Net.run net;
  match !outcome with
  | Some (Ok body) -> (
    match Wire.parse_access_outcome body with
    | Ok (Wire.Granted { content; _ }) -> check string_ "content" "payload" content
    | _ -> Alcotest.fail "expected grant at the PEP")
  | _ -> Alcotest.fail "no PEP reply"


(* --- capability wire formats (CAS vs VOMS, §2.2) ------------------------------- *)

let cas_setup format =
  let net, services = fresh () in
  List.iter (Net.add_node net) [ "cas"; "pep"; "client" ];
  let keys = Rsa.generate (Rng.create 51L) ~bits:512 in
  let cas =
    Capability_service.create services ~node:"cas" ~issuer:"cas" ~keypair:keys
      ~root:(doctor_read_policy "r") ~format ()
  in
  ignore
    (Pep.create services ~node:"pep" ~domain:"d" ~resource:"r" ~content:"data"
       (Pep.Push
          {
            trusted_issuer =
              (fun i -> if i = "cas" then Some (Capability_service.public_key cas) else None);
            check_revocation = None;
            local_pdp = None;
          }));
  let client = Client.create services ~node:"client" ~subject:(doctor_subject "alice") in
  (net, cas, client)

let test_attribute_cert_roundtrip () =
  let _net, cas, _client = cas_setup Capability_service.Saml in
  let a = Capability_service.issue cas ~subject:(doctor_subject "alice") ~pairs:[ ("r", "read") ] in
  match Dacs_saml.Attribute_cert.of_string (Dacs_saml.Attribute_cert.to_string a) with
  | Error e -> Alcotest.fail e
  | Ok a' ->
    check string_ "id preserved" a.Dacs_saml.Assertion.id a'.Dacs_saml.Assertion.id;
    check string_ "holder" "alice" a'.Dacs_saml.Assertion.subject;
    (* The signature survives re-encoding: both forms carry the issuer's
       signature over the same logical payload. *)
    check bool_ "signature still verifies" true
      (Dacs_saml.Assertion.verify (Capability_service.public_key cas) a');
    check bool_ "decision preserved" true
      (Dacs_saml.Assertion.permits a' ~resource:"r" ~action:"read");
    check bool_ "attributes preserved" true
      (List.mem_assoc "role" (Dacs_saml.Assertion.attributes a'))

let test_attribute_cert_end_to_end () =
  (* A VOMS-style CAS: the X.509-encoded capability is honoured by the
     same push PEP that accepts SAML assertions. *)
  let net, _cas, client = cas_setup Capability_service.X509_attribute_cert in
  let got = ref None in
  Client.request_with_capability client ~capability_service:"cas" ~pep:"pep" ~resource:"r"
    ~action:"read" (fun r -> got := Some r);
  Net.run net;
  (match !got with
  | Some (Ok (Wire.Granted { content; _ })) -> check string_ "content" "data" content
  | _ -> Alcotest.fail "expected grant with X.509 capability");
  (* Reuse works for the cached X.509 wire form too. *)
  Client.request_with_capability client ~capability_service:"cas" ~pep:"pep" ~resource:"r"
    ~action:"read" (fun r -> got := Some r);
  Net.run net;
  check int_ "capability reused" 1 (Client.capability_requests_made client);
  match !got with
  | Some (Ok (Wire.Granted _)) -> ()
  | _ -> Alcotest.fail "expected reuse grant"

let test_capability_format_sizes_differ () =
  let _net, cas, _client = cas_setup Capability_service.Saml in
  let a = Capability_service.issue cas ~subject:(doctor_subject "alice") ~pairs:[ ("r", "read") ] in
  let saml = Dacs_saml.Assertion.to_string a in
  let x509 = Dacs_saml.Attribute_cert.to_string a in
  check bool_ "formats differ" true (saml <> x509);
  check bool_ "both non-trivial" true (String.length saml > 100 && String.length x509 > 100)

(* --- content-based access (§3.1) ------------------------------------------------- *)

let test_content_filter_obligation () =
  let net, services = fresh () in
  List.iter (Net.add_node net) [ "pdp"; "pep-clean"; "pep-tainted"; "client" ];
  let policy =
    Policy.Inline_policy
      (Policy.make ~id:"p" ~rule_combining:Combine.First_applicable
         ~obligations:[ Dacs_policy.Obligation.content_filter ~forbidden:"CLASSIFIED" ]
         [ Rule.permit "allow" ])
  in
  ignore (Pdp_service.create services ~node:"pdp" ~name:"pdp" ~root:policy ());
  let pull = Pep.Pull { pdps = [ "pdp" ]; cache = None; call_timeout = 0.5 } in
  ignore (Pep.create services ~node:"pep-clean" ~domain:"d" ~resource:"r" ~content:"routine report" pull);
  ignore
    (Pep.create services ~node:"pep-tainted" ~domain:"d" ~resource:"r"
       ~content:"routine report with CLASSIFIED appendix" pull);
  let client = Client.create services ~node:"client" ~subject:(doctor_subject "alice") in
  let clean = ref None and tainted = ref None in
  Client.request client ~pep:"pep-clean" ~action:"read" (fun r -> clean := Some r);
  Client.request client ~pep:"pep-tainted" ~action:"read" (fun r -> tainted := Some r);
  Net.run net;
  (match !clean with
  | Some (Ok (Wire.Granted _)) -> ()
  | _ -> Alcotest.fail "clean content should pass the filter");
  match !tainted with
  | Some (Ok (Wire.Denied reason)) -> check bool_ "explains" true (String.length reason > 0)
  | _ -> Alcotest.fail "tainted content must be withheld"


(* --- policy lifecycle (§3.2 management) ------------------------------------------ *)

let lifecycle_setup () =
  let net, services = fresh () in
  Net.add_node net "pap";
  let pap =
    Pap.create services ~node:"pap" ~name:"pap"
      ~root:(doctor_read_policy "existing") ()
  in
  let rng = Rng.create 61L in
  let approver_a = Rsa.generate rng ~bits:512 in
  let approver_b = Rsa.generate rng ~bits:512 in
  let lc =
    Lifecycle.create ~pap
      ~approvers:[ ("alice", approver_a.Rsa.public); ("bob", approver_b.Rsa.public) ]
      ~required_approvals:2
      ~now:(fun () -> Net.now net)
      ()
  in
  (net, pap, lc, approver_a, approver_b)

let sign_draft lc draft (kp : Rsa.keypair) =
  match Lifecycle.signing_payload lc ~draft with
  | Some payload -> Rsa.sign kp.Rsa.private_ payload
  | None -> Alcotest.fail "missing draft payload"

let good_draft = doctor_read_policy "new-resource"

let test_lifecycle_happy_path () =
  let _net, pap, lc, a, b = lifecycle_setup () in
  let draft = Lifecycle.submit lc ~author:"carol" good_draft in
  check bool_ "starts as draft" true (Lifecycle.state_of lc ~draft = Some Lifecycle.Draft);
  (* Review with passing expectations. *)
  let ctx =
    Dacs_policy.Context.make ~subject:(doctor_subject "u")
      ~resource:[ ("resource-id", Value.String "new-resource") ]
      ~action:[ ("action-id", Value.String "read") ]
      ()
  in
  (match Lifecycle.review lc ~draft ~expectations:[ (ctx, Decision.Permit) ] () with
  | Ok report ->
    check int_ "no problems" 0 (List.length report.Lifecycle.problems);
    check int_ "no test failures" 0 (List.length report.Lifecycle.test_failures)
  | Error e -> Alcotest.fail e);
  check bool_ "reviewed" true (Lifecycle.state_of lc ~draft = Some Lifecycle.Reviewed);
  (* Cannot issue before approvals. *)
  check bool_ "issue blocked" true (Result.is_error (Lifecycle.issue lc ~draft));
  (* Two approvals required. *)
  check bool_ "first approval" true (Lifecycle.approve lc ~draft ~approver:"alice" ~signature:(sign_draft lc draft a) = Ok 1);
  check bool_ "still not approved" true (Lifecycle.state_of lc ~draft = Some Lifecycle.Reviewed);
  check bool_ "second approval" true (Lifecycle.approve lc ~draft ~approver:"bob" ~signature:(sign_draft lc draft b) = Ok 2);
  check bool_ "approved" true (Lifecycle.state_of lc ~draft = Some Lifecycle.Approved);
  (* Issue publishes to the PAP. *)
  let before = Pap.version pap in
  (match Lifecycle.issue lc ~draft with
  | Ok v -> check int_ "version bumped" (before + 1) v
  | Error e -> Alcotest.fail e);
  check bool_ "issued" true (Lifecycle.state_of lc ~draft = Some Lifecycle.Issued);
  check bool_ "history recorded" true (List.length (Lifecycle.history lc ~draft) >= 5)

let test_lifecycle_review_rejects () =
  let _net, _pap, lc, _, _ = lifecycle_setup () in
  (* Invalid draft: duplicate rule ids. *)
  let bad =
    Policy.Inline_policy (Policy.make ~id:"bad" [ Rule.permit "r"; Rule.deny "r" ])
  in
  let draft = Lifecycle.submit lc ~author:"carol" bad in
  (match Lifecycle.review lc ~draft () with
  | Ok report -> check bool_ "problems reported" true (report.Lifecycle.problems <> [])
  | Error e -> Alcotest.fail e);
  (match Lifecycle.state_of lc ~draft with
  | Some (Lifecycle.Rejected _) -> ()
  | _ -> Alcotest.fail "expected rejection");
  (* Rejected drafts cannot be approved or issued. *)
  check bool_ "approve blocked" true
    (Result.is_error (Lifecycle.approve lc ~draft ~approver:"alice" ~signature:"x"));
  check bool_ "issue blocked" true (Result.is_error (Lifecycle.issue lc ~draft))

let test_lifecycle_expectation_failure_rejects () =
  let _net, _pap, lc, _, _ = lifecycle_setup () in
  let draft = Lifecycle.submit lc ~author:"carol" good_draft in
  (* Expect a Deny that the draft does not deliver. *)
  let ctx =
    Dacs_policy.Context.make ~subject:(doctor_subject "u")
      ~resource:[ ("resource-id", Value.String "new-resource") ]
      ~action:[ ("action-id", Value.String "read") ]
      ()
  in
  (match Lifecycle.review lc ~draft ~expectations:[ (ctx, Decision.Deny) ] () with
  | Ok report -> check int_ "one failure" 1 (List.length report.Lifecycle.test_failures)
  | Error e -> Alcotest.fail e);
  match Lifecycle.state_of lc ~draft with
  | Some (Lifecycle.Rejected _) -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_lifecycle_approval_security () =
  let _net, _pap, lc, a, _ = lifecycle_setup () in
  let draft = Lifecycle.submit lc ~author:"carol" good_draft in
  ignore (Lifecycle.review lc ~draft ());
  (* Unknown approver. *)
  check bool_ "unknown approver" true
    (Result.is_error (Lifecycle.approve lc ~draft ~approver:"mallory" ~signature:"x"));
  (* Wrong key: bob's slot signed with alice's key is rejected. *)
  check bool_ "wrong key rejected" true
    (Result.is_error
       (Lifecycle.approve lc ~draft ~approver:"bob" ~signature:(sign_draft lc draft a)));
  (* Valid approval, then double approval rejected. *)
  check bool_ "valid" true
    (Lifecycle.approve lc ~draft ~approver:"alice" ~signature:(sign_draft lc draft a) = Ok 1);
  check bool_ "double approval rejected" true
    (Result.is_error
       (Lifecycle.approve lc ~draft ~approver:"alice" ~signature:(sign_draft lc draft a)))

let test_lifecycle_conflict_reporting () =
  let _net, _pap, lc, _, _ = lifecycle_setup () in
  (* A draft that denies what the current policy permits. *)
  let conflicting =
    Policy.Inline_policy
      (Policy.make ~id:"lockdown" ~issuer:"other"
         [
           Rule.deny
             ~target:
               Target.(
                 any |> subject_is "role" "doctor" |> resource_is "resource-id" "existing"
                 |> action_is "action-id" "read")
             "deny-doctors";
         ])
  in
  let draft = Lifecycle.submit lc ~author:"carol" conflicting in
  match Lifecycle.review lc ~draft () with
  | Ok report ->
    check bool_ "conflict with current policy reported" true
      (report.Lifecycle.conflicts_with_current <> []);
    (* Conflicts are advisory: the draft still passes review. *)
    check bool_ "still reviewed" true (Lifecycle.state_of lc ~draft = Some Lifecycle.Reviewed)
  | Error e -> Alcotest.fail e


(* --- anti-entropy for syndication --------------------------------------------- *)

let test_pap_anti_entropy_heals_lost_push () =
  let net, services = fresh () in
  List.iter (Net.add_node net) [ "parent"; "child" ];
  let parent = Pap.create services ~node:"parent" ~name:"parent" () in
  let child =
    Pap.create services ~node:"child" ~name:"child"
      ~admin_policy:
        (Policy.Inline_policy
           (Policy.make ~id:"adm" ~rule_combining:Combine.First_applicable
              [
                Rule.permit
                  ~condition:
                    (Dacs_policy.Expr.one_of (Dacs_policy.Expr.subject_attr "subject-id")
                       [ "parent" ])
                  "parent-may";
                Rule.deny "others";
              ]))
      ()
  in
  Pap.subscribe_local parent ~child:"child";
  Pap.enable_anti_entropy child ~parent:"parent" ~period:5.0;
  (* Partition so the push is lost, publish, then heal. *)
  Net.partition net [ "parent" ] [ "child" ];
  Pap.publish parent (doctor_read_policy "r");
  Net.run ~until:2.0 net;
  check bool_ "push lost" true (Pap.current child = None);
  Net.heal net;
  (* Within one anti-entropy period the child converges. *)
  Net.run ~until:12.0 net;
  check bool_ "healed by anti-entropy" true (Pap.current child <> None);
  (* And later updates still flow normally (by push). *)
  Pap.publish parent
    (Policy.Inline_policy (Policy.make ~id:"p2" [ Rule.deny "d" ]));
  Net.run ~until:13.0 net;
  check bool_ "subsequent push applied" true
    (match Pap.current child with
    | Some c -> Policy.child_id c = "p2"
    | None -> false)

(* --- consolidated report --------------------------------------------------------- *)

let test_report () =
  let net, services = fresh () in
  let d_a = Domain.create services ~name:"org-a" () in
  let d_b = Domain.create services ~name:"org-b" () in
  let vo = Vo.form services ~name:"vo" [ d_a; d_b ] in
  Vo.publish_policy vo (doctor_read_policy "shared");
  Net.run net;
  let pep = Domain.expose_resource d_a ~resource:"shared" () in
  let alice = Vo.client_for vo ~domain:d_b ~user:"alice" (doctor_subject "alice") in
  Client.request alice ~pep:(Pep.node pep) ~action:"read" (fun _ -> ());
  Net.run net;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  let report = Report.vo vo in
  check bool_ "names the VO" true (contains report "virtual organisation vo");
  check bool_ "covers both domains" true (contains report "domain org-a" && contains report "domain org-b");
  check bool_ "shows the PEP" true (contains report (Pep.node pep));
  check bool_ "audit consolidated" true (contains report "consolidated audit (1 entries)");
  check bool_ "permits counted" true (contains report "1 permits")

let () =
  Alcotest.run "dacs_extensions"
    [
      ( "discovery",
        [
          Alcotest.test_case "register and lookup" `Quick test_registry_register_and_lookup;
          Alcotest.test_case "lease expiry" `Quick test_registry_lease_expiry;
          Alcotest.test_case "self-advertisement only" `Quick test_registry_rejects_proxy_advertisement;
          Alcotest.test_case "discover service" `Quick test_discover_service;
          Alcotest.test_case "advertise heartbeat" `Quick test_advertise_keeps_entry_alive;
          Alcotest.test_case "auto rebind end-to-end" `Quick test_auto_rebind_end_to_end;
        ] );
      ( "negotiation-service",
        [
          Alcotest.test_case "immediate grant" `Quick test_negotiation_service_immediate_grant;
          Alcotest.test_case "iterative" `Quick test_negotiation_service_iterative;
          Alcotest.test_case "failure terminates" `Quick test_negotiation_service_failure;
          Alcotest.test_case "capability honoured at PEP" `Quick test_negotiation_capability_works_at_pep;
        ] );
      ( "capability-formats",
        [
          Alcotest.test_case "attribute cert roundtrip" `Quick test_attribute_cert_roundtrip;
          Alcotest.test_case "X.509 capability end-to-end" `Quick test_attribute_cert_end_to_end;
          Alcotest.test_case "encodings differ" `Quick test_capability_format_sizes_differ;
        ] );
      ( "content-filter",
        [ Alcotest.test_case "obligation enforced" `Quick test_content_filter_obligation ] );
      ( "lifecycle",
        [
          Alcotest.test_case "happy path" `Quick test_lifecycle_happy_path;
          Alcotest.test_case "review rejects invalid drafts" `Quick test_lifecycle_review_rejects;
          Alcotest.test_case "failed expectations reject" `Quick test_lifecycle_expectation_failure_rejects;
          Alcotest.test_case "approval security" `Quick test_lifecycle_approval_security;
          Alcotest.test_case "conflicts reported" `Quick test_lifecycle_conflict_reporting;
        ] );
      ( "anti-entropy",
        [ Alcotest.test_case "heals a lost push" `Quick test_pap_anti_entropy_heals_lost_push ] );
      ( "report",
        [ Alcotest.test_case "consolidated view" `Quick test_report ] );
      ( "signed-decisions",
        [
          Alcotest.test_case "roundtrip and tamper" `Quick test_wire_signed_response_roundtrip;
          Alcotest.test_case "untrusted signer" `Quick test_wire_signed_response_untrusted_signer;
          Alcotest.test_case "PEP requires signatures" `Quick test_pep_requires_signed_decisions;
          Alcotest.test_case "mismatched configuration fails closed" `Quick
            test_signed_decisions_without_requirement;
        ] );
    ]
