(** Policy change-impact analysis: a sound over-approximation of the
    decision region a policy delta can affect.

    Given the policy tree a PAP served before a publish and the tree it
    serves after, {!between} computes a region — a union of {e zones},
    each a conjunction of attribute {e pins} harvested from changed
    rules' and policies' targets — such that any request {!covers}
    answers [false] for is guaranteed to decide identically (decision,
    obligations and Indeterminate message) under both trees.  The
    invalidation plane then drops only cached decisions inside the
    region instead of flushing VO-wide.

    Soundness rests on {!Compiled}'s guard discipline: a pin excludes a
    request only when the pinned bag is non-empty and all-string (so a
    resolver cannot refill it and [string-equal] cannot error) and every
    target section evaluated before the pinned one is guard-clean (so it
    resolves to Match or No_match, never Indeterminate).  Under those
    conditions the changed construct's target is provably [No_match] for
    the request, the construct is NotApplicable on both sides of the
    publish, and every combining algorithm sees identical inputs.

    The analysis never errs toward exclusion: structure it cannot bound
    (changed [Policy_ref] wiring, free-form targets, more than
    {!max_zones} zones) widens to {!Unbounded}, which callers treat as
    the existing full flush. *)

type pin = {
  pin_category : Context.category;
  pin_attribute : string;
  pin_values : string list;  (** sorted, deduplicated *)
  pin_guards : (Context.category * string) list;
      (** positions that must carry clean bags before this pin may
          exclude (the attributes of the target sections evaluated
          before the pinned one) *)
}
(** One exclusion opportunity: a request whose bag at
    [(pin_category, pin_attribute)] is non-empty, all-string and
    disjoint from [pin_values] — with all [pin_guards] clean — provably
    fails the originating target. *)

type zone = pin list
(** Conjunction of pins from one changed construct's effective target
    (its own target plus every enclosing policy/set target).  A request
    is outside the zone as soon as {e any} pin excludes it; a zone with
    no pins covers every request. *)

type t =
  | Empty  (** the publish cannot change any decision *)
  | Zones of zone list  (** union of zones *)
  | Unbounded  (** no static bound — callers must full-flush *)

val empty : t
val unbounded : t

val max_zones : int
(** Zone-count cap: a region wider than this collapses to {!Unbounded}
    (a full flush is cheaper than testing every key against dozens of
    zones). *)

val is_empty : t -> bool
val is_unbounded : t -> bool

val zone_count : t -> int
(** 0 for {!Empty}; number of zones; [max_int] for {!Unbounded}. *)

val union : t -> t -> t
(** Region union; {!Empty} is the identity, {!Unbounded} absorbs, and
    the result is renormalised (zones deduplicated, {!max_zones}
    enforced). *)

val between : Policy.child option -> Policy.child option -> t
(** [between before after]: the affected region of a publish replacing
    [before] with [after].  Structurally equal trees (a no-op publish)
    yield {!Empty}; appearance or disappearance of the whole tree
    yields {!Unbounded} (even NotApplicable answers change when there
    was no policy at all).  The diff descends through policy sets and
    rule lists, trimming structurally common prefixes and suffixes, so
    an edit touching one rule yields a region bounded by that rule's
    target pins plus its ancestors'. *)

val covers : t -> Context.t -> bool
(** Conservative membership: [false] only when some zone's pin provably
    excludes the request under the guard discipline.  Requests with
    empty or non-string bags at every pinned position are always
    covered. *)

val attributes : t -> (Context.category * string) list
(** Every (category, attribute) position the region's pins and guards
    mention, deduplicated — the positions whose cached attribute bags
    an {!Unbounded}-averse attribute cache drops.  Empty for {!Empty}
    and for {!Unbounded} (callers must special-case the latter). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
