(** Multi-level caching for the decision path (§3.2 communication
    performance).

    Three mechanisms, composable and individually optional, that cut the
    per-decision message count without changing any decision:

    - {!Attr_cache}: a PDP-side TTL cache of attribute bags, filled by
      batched PIP round trips and invalidated explicitly when a PIP
      drops a subject attribute.
    - {!Single_flight}: concurrent identical in-flight queries (same
      {!Decision_cache.request_key}) share one upstream call instead of
      stampeding the decision tier.
    - {!L2}: a domain-level shared decision cache service, consulted by
      PEPs between their private L1 and the PDP tier; revocation-driven
      invalidations fan out along the syndication hierarchy (push) with
      an anti-entropy poll as the backstop, so a revoked grant is purged
      from every member within one round.

    The stale-degradation ladder composes unchanged:
    L1 fresh -> L2 fresh -> live tier -> bounded-stale L1 -> fail closed. *)

(** {1 PDP-side attribute cache} *)

module Attr_cache : sig
  type t

  val create :
    Dacs_telemetry.Metrics.t -> node:string -> ?expected:int -> ttl:float -> unit -> t
  (** Mirrors hits/misses/invalidations into
      [pdp_attr_cache_*_total{node}].  The table is pre-sized for
      [expected] entries (default 1024).  Raises [Invalid_argument] on a
      non-positive TTL. *)

  val pair_sym : Dacs_policy.Context.category -> string -> int
  (** Intern an attribute position once (e.g. at resolver setup) and use
      the sym-based lookups below on the hot path. *)

  val subject_sym : string -> int

  val find_sym : t -> now:float -> pair:int -> subject_sym:int -> Dacs_policy.Value.bag option
  (** {!find} with pre-interned ids: one packed-word table probe, no
      string hashing.  What {!Pdp_service} uses per evaluation. *)

  val store_sym : t -> now:float -> pair:int -> subject_sym:int -> Dacs_policy.Value.bag -> unit

  val find :
    t ->
    now:float ->
    category:Dacs_policy.Context.category ->
    id:string ->
    subject:string ->
    Dacs_policy.Value.bag option
  (** [Some bag] within the TTL (the bag may be empty: negative entries
      suppress refetching attributes no PIP has); [None] on miss or
      expiry (the expired entry is dropped). *)

  val store :
    t ->
    now:float ->
    category:Dacs_policy.Context.category ->
    id:string ->
    subject:string ->
    Dacs_policy.Value.bag ->
    unit

  val invalidate_subject : t -> subject:string -> id:string -> unit
  (** What a PIP's [attribute-invalidate] push triggers: drop the cached
      subject-category bag for (subject, id). *)

  val invalidate_region : t -> Dacs_policy.Delta.t -> int
  (** Drop the bags at every attribute position the region's pins and
      guards mention (undecodable pair syms drop conservatively);
      returns the number dropped.  [Unbounded] clears the cache, [Empty]
      drops nothing. *)

  val clear : t -> unit
  val size : t -> int
  val hits : t -> int
  val misses : t -> int
end

(** {1 Single-flight coalescing} *)

module Single_flight : sig
  type 'a t

  type 'a join =
    | Leader of ('a -> unit)
        (** proceed upstream; call the returned continuation with the
            result to deliver to yourself and every coalesced waiter *)
    | Coalesced  (** an identical query is in flight; your continuation
                     fires when the leader's result arrives *)

  val create : Dacs_telemetry.Metrics.t -> node:string -> 'a t
  (** Coalesced joins count into [coalesced_total{node}]. *)

  val join : 'a t -> key:string -> ('a -> unit) -> 'a join

  val inflight : 'a t -> int
  val coalesced : 'a t -> int

  val counter : 'a t -> Dacs_telemetry.Metrics.counter
  (** The [coalesced_total] cell, for owners folding it into their own
      stats/reset machinery. *)
end

(** {1 Domain-level shared L2 decision cache} *)

module L2 : sig
  type t

  val create :
    Dacs_ws.Service.t ->
    node:Dacs_net.Net.node_id ->
    ?metrics:Dacs_telemetry.Metrics.t ->
    ?max_entries:int ->
    ttl:float ->
    unit ->
    t
  (** Registers [cache-lookup], [cache-put], [cache-invalidate] and
      [cache-sync] on [node].  Storage is a {!Decision_cache} (owner =
      node), so the usual [decision_cache_*{cache}] series apply on top
      of the [l2_*_total{node}] counters and the
      [l2_invalidation_latency_seconds{node}] histogram. *)

  val node : t -> Dacs_net.Net.node_id

  val subscribe : t -> child:Dacs_net.Net.node_id -> unit
  (** Wire a child L2 under this one: full purges and keyed drops fan
      out to every subscribed child (and recursively to theirs). *)

  val enable_anti_entropy : t -> parent:Dacs_net.Net.node_id -> period:float -> unit
  (** Poll the parent's invalidation epoch every [period] seconds and
      apply any full purge the push missed — the one-round staleness
      bound for revocations. *)

  val set_on_invalidate : t -> (string option -> unit) -> unit
  (** Local hook run on every applied invalidation ([None] = full
      purge); domains use it to purge their PEPs' L1 caches in the same
      round. *)

  val set_on_region : t -> (Dacs_policy.Delta.t -> unit) -> unit
  (** Like {!set_on_invalidate} for targeted purges: domains use it to
      region-invalidate their PEPs' L1 caches in the same round. *)

  val invalidate_all : t -> unit
  (** Revocation entry point: purge here, bump the epoch, fan out. *)

  val invalidate : t -> key:string -> unit

  val invalidate_region : t -> Dacs_policy.Delta.t -> unit
  (** Targeted purge from a policy publish: drop only matching entries
      (see {!Decision_cache.invalidate_region}), bump the epoch, fan a
      [cache-region] frame to subscribed children.  [Unbounded] falls
      back to {!invalidate_all}; [Empty] is a no-op (no epoch bump, no
      fan-out).  The epoch bump means a child that misses the push
      repairs itself at its next anti-entropy poll (as a conservative
      full purge); a child that receives it advances its parent-epoch
      view and does not re-purge. *)

  val epoch : t -> int
  val size : t -> int

  val rejected_puts : t -> int
  (** Puts stamped before the last full/region purge, dropped instead of
      resurrecting the entry they carried. *)

  type stats = { lookups : int; hits : int; puts : int; invalidations : int; size : int; epoch : int }

  val stats : t -> stats

  (** {2 Client side (PEP helpers)} *)

  val remote_lookup :
    Dacs_ws.Service.t ->
    src:Dacs_net.Net.node_id ->
    l2:Dacs_net.Net.node_id ->
    ?timeout:float ->
    key:string ->
    (Dacs_policy.Decision.result option -> unit) ->
    unit
  (** Transport failures and malformed answers are reported as misses:
      the shared cache can never make a decision path fail. *)

  val remote_put :
    Dacs_ws.Service.t ->
    src:Dacs_net.Net.node_id ->
    l2:Dacs_net.Net.node_id ->
    key:string ->
    Dacs_policy.Decision.result ->
    unit
  (** Fire-and-forget. *)

  val remote_invalidate :
    Dacs_ws.Service.t ->
    src:Dacs_net.Net.node_id ->
    l2:Dacs_net.Net.node_id ->
    ?key:string ->
    ?k:(unit -> unit) ->
    unit ->
    unit
  (** Trigger an invalidation round from outside the hierarchy (e.g. a
      capability authority on revocation); [k] fires on the ack. *)
end
