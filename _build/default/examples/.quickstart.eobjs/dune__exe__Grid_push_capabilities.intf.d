examples/grid_push_capabilities.mli:
