lib/policy/policy.mli: Combine Context Decision Expr Format Obligation Rule Target
