lib/wskit/wsdl.ml: Dacs_net Dacs_xml Hashtbl List Printf Result Service Soap
