examples/trust_negotiation.ml: Dacs_core Dacs_crypto Dacs_net Dacs_policy Dacs_saml Dacs_ws List Negotiation Negotiation_service Option Pep Printf Result Wire
