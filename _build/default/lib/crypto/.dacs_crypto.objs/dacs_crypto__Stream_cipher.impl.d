lib/crypto/stream_cipher.ml: Buffer Char Hmac Rng Sha256 String
