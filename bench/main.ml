(* Experiment harness: regenerates every figure-derived experiment table
   (E1..E11 in DESIGN.md) and a set of Bechamel micro-benchmarks.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe e2 e4      # selected experiments
     dune exec bench/main.exe micro      # micro-benchmarks only

   The paper (DSN'08 requirements/architecture paper) has no numeric
   tables; each experiment operationalises one of its figures or §3
   claims.  EXPERIMENTS.md records claim vs measurement. *)

module Xml = Dacs_xml.Xml
module Value = Dacs_policy.Value
module Context = Dacs_policy.Context
module Decision = Dacs_policy.Decision
module Policy = Dacs_policy.Policy
module Rule = Dacs_policy.Rule
module Expr = Dacs_policy.Expr
module Target = Dacs_policy.Target
module Combine = Dacs_policy.Combine
module Net = Dacs_net.Net
module Engine = Dacs_net.Engine
module Service = Dacs_ws.Service
module Soap = Dacs_ws.Soap
module Security = Dacs_ws.Security
module Assertion = Dacs_saml.Assertion
module Rbac = Dacs_rbac.Rbac
module Compile = Dacs_rbac.Compile
module Rng = Dacs_crypto.Rng
module Rsa = Dacs_crypto.Rsa
open Dacs_core

let header title claim =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 78 '=') title (String.make 78 '-');
  Printf.printf "claim: %s\n\n" claim

(* Gated experiments (the ones CI greps CHECK lines from) record their
   failures here so the harness can exit non-zero — a grep that never runs
   because the binary died must not read as success, and neither must a
   FAIL line the grep pattern missed. *)
let gate_failures : string list ref = ref []

let record_gate_failures tag failures =
  gate_failures := List.map (fun f -> tag ^ ": " ^ f) failures @ !gate_failures

(* Machine-readable snapshot of an experiment's headline numbers, for CI
   artifacts and cross-run comparison: BENCH_<tag>.json under the bench
   history directory (bench/history/ next to the committed trajectory
   ledger; $DACS_HISTORY overrides it — the perturbed-baseline test
   points it at a scratch directory).  Values are pre-rendered JSON
   literals. *)
let history_dir () =
  match Sys.getenv_opt "DACS_HISTORY" with Some d when d <> "" -> d | _ -> "bench/history"

let rec ensure_dir d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    ensure_dir (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let write_bench_json tag fields =
  let dir = history_dir () in
  ensure_dir dir;
  let oc = open_out (Filename.concat dir (Printf.sprintf "BENCH_%s.json" tag)) in
  Printf.fprintf oc "{\n%s\n}\n"
    (String.concat ",\n" (List.map (fun (k, v) -> Printf.sprintf "  %S: %s" k v) fields));
  close_out oc

let json_f v = Printf.sprintf "%.4f" v
let json_i v = string_of_int v

let fresh () =
  let net = Net.create () in
  let services = Service.create (Dacs_net.Rpc.create net) in
  (net, services)

let doctor_subject user = [ ("subject-id", Value.String user); ("role", Value.String "doctor") ]

let doctor_read_policy ?(id = "policy") ?(issuer = "") resource =
  Policy.Inline_policy
    (Policy.make ~id ~issuer ~rule_combining:Combine.First_applicable
       [
         Rule.permit
           ~target:
             Target.(
               any |> subject_is "role" "doctor" |> resource_is "resource-id" resource
               |> action_is "action-id" "read")
           "permit-doctor-read";
         Rule.deny "default-deny";
       ])

(* Time a thunk with Sys.time, running it repeatedly for at least 0.2 s;
   returns microseconds per run. *)
let time_us f =
  let t0 = Sys.time () in
  let reps = ref 0 in
  while Sys.time () -. t0 < 0.2 do
    f ();
    incr reps
  done;
  (Sys.time () -. t0) *. 1e6 /. float_of_int !reps

(* ==================================================================== *)
(* E1 — Fig. 1 baseline: a VO of N domains serving cross-domain reads   *)
(* ==================================================================== *)

let e1_vo_baseline () =
  header "E1  Virtual Organisation baseline (Fig. 1)"
    "the architecture serves cross-domain requests; per-request message cost is \
     flat in the number of domains (components are contacted per request, not per VO size)";
  Printf.printf "%8s %10s %10s %12s %12s %14s\n" "domains" "requests" "granted" "msgs/req" "bytes/req"
    "mean lat (ms)";
  List.iter
    (fun n_domains ->
      let net, services = fresh () in
      let domains =
        List.init n_domains (fun i -> Domain.create services ~name:(Printf.sprintf "org%d" i) ())
      in
      let vo = Vo.form services ~name:"vo" domains in
      Vo.publish_policy vo (doctor_read_policy ~id:"vo-policy" ~issuer:"vo" "shared");
      Net.run net;
      let peps = List.map (fun d -> Domain.expose_resource d ~resource:"shared" ()) domains in
      let clients =
        List.mapi
          (fun i d ->
            Vo.client_for vo ~domain:d ~user:(Printf.sprintf "u%d" i)
              (doctor_subject (Printf.sprintf "u%d" i)))
          domains
      in
      Net.reset_stats net;
      let granted = ref 0 and total = ref 0 and lat_sum = ref 0.0 in
      (* Every client visits every foreign domain's resource once. *)
      List.iteri
        (fun ci client ->
          List.iteri
            (fun pi pep ->
              if ci <> pi then begin
                incr total;
                let issue_at = float_of_int !total in
                Engine.schedule (Net.engine net) ~delay:issue_at (fun () ->
                    let t0 = Net.now net in
                    Client.request client ~pep:(Pep.node pep) ~action:"read" ~timeout:10.0 (fun r ->
                        lat_sum := !lat_sum +. (Net.now net -. t0);
                        match r with Ok (Wire.Granted _) -> incr granted | _ -> ()))
              end)
            peps)
        clients;
      Net.run net;
      let sent = Net.total_sent net in
      Printf.printf "%8d %10d %10d %12.1f %12.0f %14.2f\n" n_domains !total !granted
        (float_of_int sent.Net.count /. float_of_int !total)
        (float_of_int sent.Net.bytes /. float_of_int !total)
        (1000.0 *. !lat_sum /. float_of_int !total))
    [ 2; 4; 8 ]

(* ==================================================================== *)
(* E2 — Fig. 2 vs Fig. 3: push vs pull vs agent                         *)
(* ==================================================================== *)

let e2_push_vs_pull () =
  header "E2  Push (capability, Fig. 2) vs pull (policy-issuing, Fig. 3) vs agent"
    "pull costs 4 messages per access; push costs 4 on first access then 2 on reuse \
     (capability caching); the agent model needs 2; caching pulls converge to 2";
  let run_mechanism mechanism accesses =
    let net, services = fresh () in
    let policy = doctor_read_policy "r" in
    Net.add_node net "client";
    let client = Client.create services ~node:"client" ~subject:(doctor_subject "alice") in
    Net.add_node net "pep";
    let do_request, label =
      match mechanism with
      | `Pull_nocache | `Pull_cache ->
        Net.add_node net "pdp";
        ignore (Pdp_service.create services ~node:"pdp" ~name:"pdp" ~root:policy ());
        let cache =
          if mechanism = `Pull_cache then Some (Decision_cache.create ~ttl:1e9 ()) else None
        in
        ignore
          (Pep.create services ~node:"pep" ~domain:"d" ~resource:"r"
             (Pep.Pull { pdps = [ "pdp" ]; cache; call_timeout = 1.0 }));
        ( (fun k -> Client.request client ~pep:"pep" ~action:"read" k),
          if mechanism = `Pull_cache then "pull+cache" else "pull" )
      | `Push ->
        Net.add_node net "cas";
        let keys = Rsa.generate (Rng.create 1L) ~bits:512 in
        let cas =
          Capability_service.create services ~node:"cas" ~issuer:"cas" ~keypair:keys ~root:policy
            ~validity:1e9 ()
        in
        ignore
          (Pep.create services ~node:"pep" ~domain:"d" ~resource:"r"
             (Pep.Push
                {
                  trusted_issuer =
                    (fun i -> if i = "cas" then Some (Capability_service.public_key cas) else None);
                  check_revocation = None;
                  local_pdp = None;
                }));
        ( (fun k ->
            Client.request_with_capability client ~capability_service:"cas" ~pep:"pep" ~resource:"r"
              ~action:"read" k),
          "push" )
      | `Agent ->
        let embedded = Pdp_service.create services ~node:"pep" ~name:"embedded" ~root:policy () in
        ignore (Pep.create services ~node:"pep" ~domain:"d" ~resource:"r" (Pep.Agent embedded));
        ((fun k -> Client.request client ~pep:"pep" ~action:"read" k), "agent")
    in
    let granted = ref 0 and lat = ref 0.0 in
    for i = 1 to accesses do
      Engine.schedule (Net.engine net) ~delay:(float_of_int i) (fun () ->
          let t0 = Net.now net in
          do_request (fun r ->
              lat := !lat +. (Net.now net -. t0);
              match r with Ok (Wire.Granted _) -> incr granted | _ -> ()))
    done;
    Net.run net;
    let sent = Net.total_sent net in
    ( label,
      !granted,
      float_of_int sent.Net.count /. float_of_int accesses,
      float_of_int sent.Net.bytes /. float_of_int accesses,
      1000.0 *. !lat /. float_of_int accesses )
  in
  Printf.printf "%10s | %-12s %8s %10s %12s %12s\n" "accesses" "mechanism" "granted" "msgs/acc"
    "bytes/acc" "lat (ms)";
  List.iter
    (fun accesses ->
      List.iter
        (fun mechanism ->
          let label, granted, msgs, bytes, lat = run_mechanism mechanism accesses in
          Printf.printf "%10d | %-12s %8d %10.2f %12.0f %12.2f\n" accesses label granted msgs bytes
            lat)
        [ `Pull_nocache; `Pull_cache; `Push; `Agent ];
      print_newline ())
    [ 1; 5; 20; 50 ]

(* ==================================================================== *)
(* E3 — Fig. 4: evaluation-engine cost                                  *)
(* ==================================================================== *)

let sized_policy ?(combining = Combine.First_applicable) n_rules =
  (* n_rules rules on distinct resources; requests for resource n-1 match
     only the last rule, forcing a full scan. *)
  Policy.make ~id:"sized" ~rule_combining:combining
    (List.init n_rules (fun i ->
         Rule.permit
           ~target:Target.(any |> resource_is "resource-id" (Printf.sprintf "res%d" i))
           (Printf.sprintf "r%d" i)))

let request_for i =
  Context.make ~subject:(doctor_subject "alice")
    ~resource:[ ("resource-id", Value.String (Printf.sprintf "res%d" i)) ]
    ~action:[ ("action-id", Value.String "read") ]
    ()

let e3_xacml_eval () =
  header "E3  Policy-evaluation cost (Fig. 4 engine)"
    "evaluation time grows linearly with the number of rules scanned; combining \
     algorithms differ by their short-circuit behaviour";
  Printf.printf "%8s %16s %16s\n" "rules" "worst-case (us)" "best-case (us)";
  List.iter
    (fun n ->
      let p = sized_policy n in
      let worst = request_for (n - 1) and best = request_for 0 in
      let t_worst = time_us (fun () -> ignore (Policy.evaluate worst p)) in
      let t_best = time_us (fun () -> ignore (Policy.evaluate best p)) in
      Printf.printf "%8d %16.2f %16.2f\n" n t_worst t_best)
    [ 10; 100; 1000 ];
  Printf.printf "\ncombining algorithms over 200 mixed rules (matching request):\n";
  Printf.printf "%-24s %14s\n" "algorithm" "us/eval";
  let mixed_rules =
    List.init 200 (fun i ->
        let mk = if i mod 2 = 0 then Rule.permit else Rule.deny in
        mk ~target:Target.(any |> resource_is "resource-id" "shared") (Printf.sprintf "r%d" i))
  in
  let ctx =
    Context.make ~subject:(doctor_subject "a")
      ~resource:[ ("resource-id", Value.String "shared") ]
      ()
  in
  List.iter
    (fun algorithm ->
      let p = Policy.make ~id:"mixed" ~rule_combining:algorithm mixed_rules in
      Printf.printf "%-24s %14.2f\n" (Combine.name algorithm)
        (time_us (fun () -> ignore (Policy.evaluate ctx p))))
    Combine.[ Deny_overrides; Permit_overrides; First_applicable ]

(* ==================================================================== *)
(* E4 — §3.2 caching: traffic saved vs staleness risked                 *)
(* ==================================================================== *)

let e4_caching () =
  header "E4  Decision caching (§3.2 communication performance)"
    "larger TTLs cut PEP->PDP traffic roughly as 1/TTL but widen the window in \
     which revoked rights are still honoured (stale permits)";
  Printf.printf "%8s %10s %10s %12s %14s %16s\n" "ttl(s)" "requests" "pdp calls" "hit rate"
    "stale permits" "staleness(s)";
  List.iter
    (fun ttl ->
      let net, services = fresh () in
      let domain = Domain.create services ~name:"d" () in
      Domain.set_local_policy domain (doctor_read_policy "ws");
      let cache = if ttl > 0.0 then Some (Decision_cache.create ~ttl ()) else None in
      Net.add_node net "c";
      let pep_node = "d.pep.ws" in
      Net.add_node net pep_node;
      let pep =
        Pep.create services ~node:pep_node ~domain:"d" ~resource:"ws" ~audit:(Domain.audit domain)
          (Pep.Pull { pdps = [ Domain.pdp_node domain ]; cache; call_timeout = 1.0 })
      in
      let client = Client.create services ~node:"c" ~subject:(doctor_subject "alice") in
      (* One request per second for 200 s; rights revoked at t=100 at the
         PAP (an administrator cannot reach PEP caches). *)
      let revoke_at = 100.0 in
      let stale = ref 0 and last_stale = ref 0.0 in
      let n_requests = 200 in
      for i = 1 to n_requests do
        Engine.schedule (Net.engine net) ~delay:(float_of_int i) (fun () ->
            Client.request client ~pep:pep_node ~action:"read" ~timeout:5.0 (fun r ->
                match r with
                | Ok (Wire.Granted _) ->
                  if Net.now net > revoke_at then begin
                    incr stale;
                    last_stale := Net.now net
                  end
                | _ -> ()))
      done;
      Engine.schedule (Net.engine net) ~delay:revoke_at (fun () ->
          Pap.publish (Domain.pap domain)
            (Policy.Inline_policy (Policy.make ~id:"lockdown" [ Rule.deny "d" ])));
      Net.run net;
      let s = Pep.stats pep in
      Printf.printf "%8.0f %10d %10d %12.2f %14d %16.1f\n" ttl n_requests s.Pep.pdp_calls
        (float_of_int s.Pep.cache_hits /. float_of_int n_requests)
        !stale
        (if !stale = 0 then 0.0 else !last_stale -. revoke_at))
    [ 0.0; 5.0; 30.0; 120.0 ]

(* ==================================================================== *)
(* E5 — Fig. 5: policy syndication hierarchy                            *)
(* ==================================================================== *)

let e5_syndication () =
  header "E5  Policy syndication (Fig. 5)"
    "syndicating policies to local PAPs moves per-decision policy fetches off the \
     WAN; update propagation delay grows with hierarchy depth";
  (* Part 1: WAN vs local traffic for three distribution architectures. *)
  let wan_latency = 0.040 and lan_latency = 0.001 in
  let decisions = 50 in
  Printf.printf "%-22s %12s %12s %16s\n" "architecture" "total msgs" "WAN msgs" "mean lat (ms)";
  let admin_from node =
    Policy.Inline_policy
      (Policy.make ~id:"adm" ~rule_combining:Combine.First_applicable
         [
           Rule.permit ~condition:(Expr.one_of (Expr.subject_attr "subject-id") [ node ]) "parent-may";
           Rule.deny "others-not";
         ])
  in
  let run_arch arch =
    let net, services = fresh () in
    Net.set_default_latency net lan_latency;
    List.iter (Net.add_node net) [ "root-pap"; "local-pap"; "pdp"; "pep"; "client" ];
    Net.set_latency net "pdp" "root-pap" wan_latency;
    Net.set_latency net "local-pap" "root-pap" wan_latency;
    let root_pap =
      Pap.create services ~node:"root-pap" ~name:"root" ~root:(doctor_read_policy "ws") ()
    in
    let pap_for_pdp, refresh =
      match arch with
      | `Central_every -> ("root-pap", Pdp_service.Every_query)
      | `Central_ttl -> ("root-pap", Pdp_service.Ttl 10.0)
      | `Syndicated ->
        let local =
          Pap.create services ~node:"local-pap" ~name:"local" ~admin_policy:(admin_from "root-pap") ()
        in
        Pap.subscribe_local root_pap ~child:(Pap.node local);
        (* Seed the local PAP via one syndication push. *)
        Pap.publish root_pap (doctor_read_policy "ws");
        ("local-pap", Pdp_service.Every_query)
    in
    ignore (Pdp_service.create services ~node:"pdp" ~name:"pdp" ~pap:pap_for_pdp ~refresh ());
    ignore
      (Pep.create services ~node:"pep" ~domain:"d" ~resource:"ws"
         (Pep.Pull { pdps = [ "pdp" ]; cache = None; call_timeout = 2.0 }));
    let client = Client.create services ~node:"client" ~subject:(doctor_subject "a") in
    Net.run net;
    Net.reset_stats net;
    Net.set_tracing net true;
    let lat = ref 0.0 in
    for i = 1 to decisions do
      Engine.schedule (Net.engine net) ~delay:(float_of_int i) (fun () ->
          let t0 = Net.now net in
          Client.request client ~pep:"pep" ~action:"read" ~timeout:5.0 (fun _ ->
              lat := !lat +. (Net.now net -. t0)))
    done;
    Net.run net;
    let sent = Net.total_sent net in
    let wan =
      List.length
        (List.filter
           (fun e -> e.Net.t_src = "root-pap" || e.Net.t_dst = "root-pap")
           (Net.trace net))
    in
    (sent.Net.count, wan, 1000.0 *. !lat /. float_of_int decisions)
  in
  List.iter
    (fun (label, arch) ->
      let total, wan, lat = run_arch arch in
      Printf.printf "%-22s %12d %12d %16.2f\n" label total wan lat)
    [
      ("central, every query", `Central_every);
      ("central, TTL=10s", `Central_ttl);
      ("syndicated local PAP", `Syndicated);
    ];
  (* Part 2: propagation delay through the hierarchy. *)
  Printf.printf "\nupdate propagation through a fan-out-2 hierarchy (WAN links %.0f ms):\n"
    (wan_latency *. 1000.0);
  Printf.printf "%8s %8s %18s %12s\n" "depth" "paps" "propagation (ms)" "push msgs";
  List.iter
    (fun depth ->
      let net, services = fresh () in
      Net.set_default_latency net wan_latency;
      Net.add_node net "root";
      let root = Pap.create services ~node:"root" ~name:"root" () in
      let count = ref 1 in
      let all_paps = ref [] in
      let rec build parent level prefix =
        if level < depth then
          List.iter
            (fun i ->
              let node = Printf.sprintf "%s-%d" prefix i in
              Net.add_node net node;
              incr count;
              let pap =
                Pap.create services ~node ~name:node ~admin_policy:(admin_from (Pap.node parent)) ()
              in
              Pap.subscribe_local parent ~child:node;
              all_paps := pap :: !all_paps;
              build pap (level + 1) node)
            [ 0; 1 ]
      in
      build root 0 "pap";
      Net.reset_stats net;
      (* Poll the hierarchy every millisecond: propagation is the instant
         the last PAP holds the update (RPC-timeout timers would otherwise
         dominate Net.now at quiescence). *)
      let propagated_at = ref nan in
      let rec poll () =
        if List.for_all (fun p -> Pap.current p <> None) !all_paps then
          propagated_at := Net.now net
        else if Net.now net < 10.0 then Engine.schedule (Net.engine net) ~delay:0.001 poll
      in
      Pap.publish root (doctor_read_policy "ws");
      Engine.schedule (Net.engine net) ~delay:0.001 poll;
      Net.run net;
      let sent = Net.total_sent net in
      Printf.printf "%8d %8d %18.1f %12d%s\n" depth !count (1000.0 *. !propagated_at)
        sent.Net.count
        (if Float.is_nan !propagated_at then "  (INCOMPLETE)" else ""))
    [ 1; 2; 3 ]

(* ==================================================================== *)
(* E6 — §3.2 message sizes: XML and WS-Security overhead                *)
(* ==================================================================== *)

let e6_message_size () =
  header "E6  Message sizes (§3.2; cf. Juric et al. on WS-Security overhead)"
    "XML-encoded authorisation messages are verbose; signing and encrypting \
     multiply envelope size; policy size grows linearly with rule count";
  let ctx =
    Context.make ~subject:(doctor_subject "alice")
      ~resource:[ ("resource-id", Value.String "patient-records") ]
      ~action:[ ("action-id", Value.String "read") ]
      ~environment:[ ("time", Value.Time 42.0) ]
      ()
  in
  let query_body = Wire.authz_query ctx in
  let plain = { Soap.headers = []; body = query_body } in
  let keys = Rsa.generate (Rng.create 3L) ~bits:512 in
  let cert =
    Dacs_crypto.Cert.self_signed keys ~subject:"cn=pep" ~serial:1 ~not_before:0.0 ~not_after:1e9
  in
  let signed = Security.sign ~key:keys.Rsa.private_ ~cert plain in
  let rng = Rng.create 4L in
  let key = Dacs_crypto.Stream_cipher.derive_key "chan" in
  let encrypted = Security.encrypt_body rng ~key signed in
  let size e = String.length (Soap.to_string e) in
  Printf.printf "%-38s %10s %8s\n" "message" "bytes" "ratio";
  let base = size plain in
  List.iter
    (fun (label, s) ->
      Printf.printf "%-38s %10d %8.2f\n" label s (float_of_int s /. float_of_int base))
    [
      ("authz query, plain SOAP", base);
      ("authz query, signed (WS-Security)", size signed);
      ("authz query, signed + encrypted", size encrypted);
    ];
  let assertion =
    Assertion.sign keys.Rsa.private_
      (Assertion.make ~id:"cap-1" ~issuer:"cas" ~subject:"alice" ~issued_at:0.0
         [
           Assertion.Attribute_statement (doctor_subject "alice");
           Assertion.Authz_decision_statement
             { resource = "patient-records"; action = "read"; decision = Decision.Permit };
         ])
  in
  Printf.printf "%-38s %10d %8.2f\n" "signed capability (SAML, CAS-style)"
    (String.length (Assertion.to_string assertion))
    (float_of_int (String.length (Assertion.to_string assertion)) /. float_of_int base);
  Printf.printf "%-38s %10d %8.2f\n" "signed capability (X.509, VOMS-style)"
    (String.length (Dacs_saml.Attribute_cert.to_string assertion))
    (float_of_int (String.length (Dacs_saml.Attribute_cert.to_string assertion))
    /. float_of_int base);
  Printf.printf "\npolicy document size vs rule count:\n%8s %12s %14s\n" "rules" "bytes" "bytes/rule";
  List.iter
    (fun n ->
      let p = sized_policy n in
      let bytes = String.length (Dacs_policy.Xacml_xml.child_to_string (Policy.Inline_policy p)) in
      Printf.printf "%8d %12d %14.1f\n" n bytes (float_of_int bytes /. float_of_int n))
    [ 10; 100; 1000 ]

(* ==================================================================== *)
(* E7 — §3.1 conflict detection and resolution                          *)
(* ==================================================================== *)

let e7_conflicts () =
  header "E7  Static conflict analysis (§3.1)"
    "policies authored independently by more domains over shared resources produce \
     more modality conflicts; combining algorithms resolve them differently";
  let roles = [ "doctor"; "nurse"; "admin"; "auditor" ] in
  let resources = [ "charts"; "labs"; "billing" ] in
  let actions = [ "read"; "write" ] in
  Printf.printf "%8s %8s %10s %12s %16s %10s\n" "domains" "rules" "conflicts" "cross-auth"
    "deny-resolved" "time(ms)";
  List.iter
    (fun n_domains ->
      let rng = Rng.create (Int64.of_int (100 + n_domains)) in
      let policies =
        List.init n_domains (fun d ->
            let rules =
              List.init 20 (fun i ->
                  let mk = if Rng.bool rng then Rule.permit else Rule.deny in
                  mk
                    ~target:
                      Target.(
                        any
                        |> subject_is "role" (Rng.pick rng roles)
                        |> resource_is "resource-id" (Rng.pick rng resources)
                        |> action_is "action-id" (Rng.pick rng actions))
                    (Printf.sprintf "d%d-r%d" d i))
            in
            Policy.Inline_policy
              (Policy.make
                 ~id:(Printf.sprintf "domain%d" d)
                 ~issuer:(Printf.sprintf "domain%d" d)
                 rules))
      in
      let set = Policy.make_set ~id:"vo" policies in
      let t0 = Sys.time () in
      let conflicts = Conflict.find_in_set set in
      let elapsed = (Sys.time () -. t0) *. 1000.0 in
      let cross = List.filter (fun c -> c.Conflict.cross_authority) conflicts in
      let deny_resolved =
        List.filter
          (fun c -> Conflict.resolution Combine.Deny_overrides c = Decision.Deny)
          conflicts
      in
      Printf.printf "%8d %8d %10d %12d %16d %10.2f\n" n_domains (20 * n_domains)
        (List.length conflicts) (List.length cross) (List.length deny_resolved) elapsed)
    [ 1; 2; 4; 8 ];
  (* Resolution semantics on one canonical conflict. *)
  let pa = Policy.make ~id:"pa" ~issuer:"a" [ Rule.permit ~target:(Target.for_resource "x") "p" ] in
  let pb = Policy.make ~id:"pb" ~issuer:"b" [ Rule.deny ~target:(Target.for_resource "x") "d" ] in
  match Conflict.find_between pa pb with
  | c :: _ ->
    Printf.printf "\nresolution of a permit/deny conflict on resource x:\n";
    List.iter
      (fun a ->
        Printf.printf "  %-26s -> %s\n" (Combine.name a)
          (Decision.decision_to_string (Conflict.resolution a c)))
      Combine.all
  | [] -> print_endline "unexpected: no conflict found"

(* ==================================================================== *)
(* E8 — dependability: availability under PDP crash faults              *)
(* ==================================================================== *)

let e8_dependability () =
  header "E8  Availability under PDP crashes (the paper's 'dependable' headline)"
    "replicating decision points and failing over on timeout keeps the authorisation \
     service available through crashes; availability rises steeply with replica count";
  let duration = 1000 in
  let seeds = [ 1; 2; 3; 4; 5 ] in
  let mtbf = 120.0 and mttr = 40.0 in
  Printf.printf
    "(MTBF %.0fs, MTTR %.0fs per replica, %d requests at 1/s, timeout 0.4s, mean of %d seeds)\n\n"
    mtbf mttr duration (List.length seeds);
  Printf.printf "%10s %14s %12s %14s\n" "replicas" "availability" "failovers" "mean lat (ms)";
  let run_once replicas seed =
    let net, services = fresh () in
    let policy = doctor_read_policy "ws" in
    let rng = Rng.create (Int64.of_int ((1000 * seed) + replicas)) in
    let nodes =
      List.init replicas (fun i ->
          let node = Printf.sprintf "pdp%d" i in
          Net.add_node net node;
          ignore (Pdp_service.create services ~node ~name:node ~root:policy ());
          (* Crash/recover schedule with jittered up/down periods. *)
          let rec schedule t =
            if t < float_of_int duration then begin
              let up = mtbf *. (0.5 +. Rng.float rng 1.0) in
              let down = mttr *. (0.5 +. Rng.float rng 1.0) in
              Engine.schedule (Net.engine net) ~delay:(t +. up) (fun () -> Net.crash net node);
              Engine.schedule (Net.engine net)
                ~delay:(t +. up +. down)
                (fun () -> Net.recover net node);
              schedule (t +. up +. down)
            end
          in
          schedule 0.0;
          node)
    in
    Net.add_node net "pep";
    let pep =
      Pep.create services ~node:"pep" ~domain:"d" ~resource:"ws"
        (Pep.Pull { pdps = nodes; cache = None; call_timeout = 0.4 })
    in
    Net.add_node net "c";
    let client = Client.create services ~node:"c" ~subject:(doctor_subject "alice") in
    let served = ref 0 and lat = ref 0.0 in
    for i = 1 to duration do
      Engine.schedule (Net.engine net) ~delay:(float_of_int i) (fun () ->
          let t0 = Net.now net in
          Client.request client ~pep:"pep" ~action:"read" ~timeout:10.0 (fun r ->
              match r with
              | Ok (Wire.Granted _) ->
                incr served;
                lat := !lat +. (Net.now net -. t0)
              | _ -> ()))
    done;
    Net.run net;
    ( float_of_int !served /. float_of_int duration,
      (Pep.stats pep).Pep.failovers,
      1000.0 *. !lat /. float_of_int (max 1 !served) )
  in
  List.iter
    (fun replicas ->
      let runs = List.map (run_once replicas) seeds in
      let n = float_of_int (List.length runs) in
      let avail = List.fold_left (fun acc (a, _, _) -> acc +. a) 0.0 runs /. n in
      let fo = List.fold_left (fun acc (_, f, _) -> acc + f) 0 runs / List.length runs in
      let lat = List.fold_left (fun acc (_, _, l) -> acc +. l) 0.0 runs /. n in
      Printf.printf "%10d %14.3f %12d %14.2f\n" replicas avail fo lat)
    [ 1; 2; 3; 4 ]

(* ==================================================================== *)
(* E9 — §3.1 trust negotiation                                          *)
(* ==================================================================== *)

let e9_negotiation () =
  header "E9  Trust negotiation (§3.1, Traust-style)"
    "negotiation cost (rounds, messages) grows linearly with the depth of the \
     credential-release chain; mutually suspicious policies deadlock and fail fast";
  Printf.printf "%8s %10s %10s %12s %12s\n" "depth" "success" "rounds" "messages" "disclosed";
  List.iter
    (fun depth ->
      (* Alternating chain: client cred i needs server cred i; server cred
         i needs client cred i-1; client cred 0 is free. *)
      let client_creds =
        List.init (depth + 1) (fun i ->
            if i = 0 then Negotiation.unprotected "c0"
            else Negotiation.protected_by (Printf.sprintf "c%d" i) [ Printf.sprintf "s%d" i ])
      in
      let server_creds =
        List.init depth (fun i ->
            Negotiation.protected_by (Printf.sprintf "s%d" (i + 1)) [ Printf.sprintf "c%d" i ])
      in
      let outcome =
        Negotiation.negotiate
          ~client:{ Negotiation.party_name = "client"; credentials = client_creds }
          ~server:{ Negotiation.party_name = "server"; credentials = server_creds }
          ~target:[ [ Printf.sprintf "c%d" depth ] ]
          ()
      in
      Printf.printf "%8d %10b %10d %12d %12d\n" depth outcome.Negotiation.success
        outcome.Negotiation.rounds outcome.Negotiation.messages
        (List.length outcome.Negotiation.disclosed_by_client
        + List.length outcome.Negotiation.disclosed_by_server))
    [ 0; 1; 2; 4; 8 ];
  (* The same chains over the network (Traust-style service): wire cost. *)
  Printf.printf "\nover the simulated network (negotiation service, ending in a capability):\n";
  Printf.printf "%8s %10s %12s %14s\n" "depth" "rounds" "messages" "bytes on wire";
  List.iter
    (fun depth ->
      let net, services = fresh () in
      List.iter (Net.add_node net) [ "traust"; "stranger" ];
      let keys = Rsa.generate (Rng.create 71L) ~bits:512 in
      let client_creds =
        List.init (depth + 1) (fun i ->
            if i = 0 then Dacs_core.Negotiation.unprotected "c0"
            else Dacs_core.Negotiation.protected_by (Printf.sprintf "c%d" i) [ Printf.sprintf "s%d" i ])
      in
      let server =
        Negotiation_service.create services ~node:"traust" ~issuer:"traust" ~keypair:keys
          ~credentials:
            (List.init depth (fun i ->
                 Dacs_core.Negotiation.protected_by
                   (Printf.sprintf "s%d" (i + 1))
                   [ Printf.sprintf "c%d" i ]))
          ~requirement_for:(fun ~resource:_ ~action:_ -> [ [ Printf.sprintf "c%d" depth ] ])
          ()
      in
      let outcome = ref None in
      Negotiation_service.negotiate server ~services ~client_node:"stranger"
        ~credentials:client_creds ~subject:[] ~resource:"r" ~action:"read" (fun o ->
          outcome := Some o);
      Net.run net;
      match !outcome with
      | Some o ->
        let sent = Net.total_sent net in
        Printf.printf "%8d %10d %12d %14d%s\n" depth o.Negotiation_service.rounds sent.Net.count
          sent.Net.bytes
          (if o.Negotiation_service.granted = None then "  (FAILED)" else "")
      | None -> Printf.printf "%8d  did not complete\n" depth)
    [ 0; 1; 2; 4; 8 ];

  (* Success rate vs policy strictness. *)
  Printf.printf "\nsuccess rate vs release-policy strictness (100 random bilateral policies each):\n";
  Printf.printf "%12s %14s %14s\n" "strictness" "success rate" "mean rounds";
  List.iter
    (fun strictness ->
      let rng = Rng.create (Int64.of_float ((strictness *. 1000.0) +. 1.0)) in
      let successes = ref 0 and rounds = ref 0 in
      for _ = 1 to 100 do
        let make_party prefix other_prefix =
          List.init 4 (fun i ->
              let name = Printf.sprintf "%s%d" prefix i in
              if Rng.float rng 1.0 < strictness then
                Negotiation.protected_by name [ Printf.sprintf "%s%d" other_prefix (Rng.int rng 4) ]
              else Negotiation.unprotected name)
        in
        let outcome =
          Negotiation.negotiate
            ~client:{ Negotiation.party_name = "c"; credentials = make_party "c" "s" }
            ~server:{ Negotiation.party_name = "s"; credentials = make_party "s" "c" }
            ~target:[ [ "c0"; "c1" ] ]
            ()
        in
        if outcome.Negotiation.success then incr successes;
        rounds := !rounds + outcome.Negotiation.rounds
      done;
      Printf.printf "%12.1f %14.2f %14.2f\n" strictness
        (float_of_int !successes /. 100.0)
        (float_of_int !rounds /. 100.0))
    [ 0.0; 0.3; 0.6; 0.9 ]

(* ==================================================================== *)
(* E10 — §3.2 delegation                                                *)
(* ==================================================================== *)

let e10_delegation () =
  header "E10  Delegation chains and revocation (§3.2)"
    "chain validation cost grows with delegation depth; revoking one link instantly \
     severs every authority derived through it";
  Printf.printf "%8s %14s %12s\n" "depth" "validate (us)" "authorised";
  List.iter
    (fun depth ->
      let d = Delegation.create ~roots:[ "root" ] in
      let rec build prev i =
        if i <= depth then begin
          (match
             Delegation.grant d ~can_redelegate:true ~delegator:prev
               ~delegate:(Printf.sprintf "a%d" i) ~scope:"" ~now:0.0 ~expires:1e9 ()
           with
          | Ok _ -> ()
          | Error e -> failwith e);
          build (Printf.sprintf "a%d" i) (i + 1)
        end
      in
      build "root" 1;
      let issuer = Printf.sprintf "a%d" depth in
      let t =
        time_us (fun () -> ignore (Delegation.authority_for d ~issuer ~resource:"x" ~now:1.0))
      in
      Printf.printf "%8d %14.2f %12b\n" depth t
        (Delegation.authority_for d ~issuer ~resource:"x" ~now:1.0))
    [ 1; 2; 4; 8; 16 ];
  (* Revocation cascade. *)
  let d = Delegation.create ~roots:[ "root" ] in
  let g1 =
    match
      Delegation.grant d ~can_redelegate:true ~delegator:"root" ~delegate:"a" ~scope:"" ~now:0.0
        ~expires:1e9 ()
    with
    | Ok g -> g
    | Error e -> failwith e
  in
  ignore
    (Delegation.grant d ~can_redelegate:true ~delegator:"a" ~delegate:"b" ~scope:"" ~now:0.0
       ~expires:1e9 ());
  ignore (Delegation.grant d ~delegator:"b" ~delegate:"c" ~scope:"" ~now:0.0 ~expires:1e9 ());
  Printf.printf "\nrevocation cascade (root -> a -> b -> c):\n";
  let show () =
    Printf.printf "  a=%b b=%b c=%b\n"
      (Delegation.authority_for d ~issuer:"a" ~resource:"x" ~now:1.0)
      (Delegation.authority_for d ~issuer:"b" ~resource:"x" ~now:1.0)
      (Delegation.authority_for d ~issuer:"c" ~resource:"x" ~now:1.0)
  in
  Printf.printf "  before revoking root->a:\n";
  show ();
  ignore (Delegation.revoke d ~grant_id:g1.Delegation.id);
  Printf.printf "  after revoking root->a:\n";
  show ()

(* ==================================================================== *)
(* E11 — §3.1 identity-based vs role-based policies at scale            *)
(* ==================================================================== *)

let e11_rbac_scale () =
  header "E11  Identity-based ACLs vs role-based policies (§3.1 scalability)"
    "identity-based policy stores grow linearly with the user base while role-based \
     stores stay constant; evaluation time follows store size";
  Printf.printf "%8s | %10s %12s %12s | %10s %12s %12s\n" "users" "acl rules" "acl bytes"
    "acl us/eval" "rbac rules" "rbac bytes" "rbac us/eval";
  List.iter
    (fun users ->
      let m = ref Rbac.empty in
      List.iter (fun r -> m := Rbac.add_role !m r) [ "doctor"; "nurse"; "clerk" ];
      let grant role p =
        match Rbac.grant_permission !m role p with Ok v -> m := v | Error e -> failwith e
      in
      grant "doctor" { Rbac.action = "read"; resource = "charts" };
      grant "doctor" { Rbac.action = "write"; resource = "charts" };
      grant "nurse" { Rbac.action = "read"; resource = "vitals" };
      grant "clerk" { Rbac.action = "read"; resource = "schedule" };
      for i = 0 to users - 1 do
        let role = List.nth [ "doctor"; "nurse"; "clerk" ] (i mod 3) in
        match Rbac.assign_user !m (Printf.sprintf "u%d" i) role with
        | Ok v -> m := v
        | Error e -> failwith e
      done;
      let acl = Compile.to_identity_policy !m in
      let rbac = Compile.to_policy !m in
      let last_user = Printf.sprintf "u%d" (users - 1) in
      let ctx =
        Context.make
          ~subject:(Compile.subject_for_user !m last_user)
          ~resource:[ ("resource-id", Value.String "schedule") ]
          ~action:[ ("action-id", Value.String "read") ]
          ()
      in
      let bytes p =
        String.length (Dacs_policy.Xacml_xml.child_to_string (Policy.Inline_policy p))
      in
      Printf.printf "%8d | %10d %12d %12.1f | %10d %12d %12.1f\n" users (Policy.rule_count acl)
        (bytes acl)
        (time_us (fun () -> ignore (Policy.evaluate ctx acl)))
        (Policy.rule_count rbac) (bytes rbac)
        (time_us (fun () -> ignore (Policy.evaluate ctx rbac))))
    [ 10; 100; 1000 ]

(* ==================================================================== *)
(* E12 — ablation: timeout failover vs discovery-driven rebinding       *)
(* ==================================================================== *)

let e12_discovery_ablation () =
  header "E12  Ablation: static failover list vs discovery-driven rebinding (§3.2)"
    "with a discovery registry, dead replicas are dropped from the PEP's list \
     proactively, so requests stop paying timeout penalties while a replica is down";
  let duration = 600 in
  let lease = 5.0 in
  Printf.printf "(3 replicas; replica 0 down from t=100 to t=400; lease %.0fs, timeout 0.4s)\n\n" lease;
  Printf.printf "%-28s %10s %12s %14s %12s\n" "strategy" "served" "failovers" "mean lat (ms)" "p-max (ms)";
  let run_strategy use_discovery =
    let net, services = fresh () in
    let policy = doctor_read_policy "ws" in
    List.iter (Net.add_node net) [ "registry"; "pep"; "c" ];
    let replicas =
      List.init 3 (fun i ->
          let node = Printf.sprintf "pdp%d" i in
          Net.add_node net node;
          ignore (Pdp_service.create services ~node ~name:node ~root:policy ());
          node)
    in
    let pep =
      Pep.create services ~node:"pep" ~domain:"d" ~resource:"ws"
        (Pep.Pull { pdps = replicas; cache = None; call_timeout = 0.4 })
    in
    if use_discovery then begin
      let reg = Discovery.create services ~node:"registry" ~lease () in
      List.iter (fun node -> Discovery.advertise reg ~services ~node ~kind:"pdp" ()) replicas;
      Discovery.auto_rebind reg ~pep ~kind:"pdp" ~period:(lease /. 2.0) ()
    end;
    Engine.schedule (Net.engine net) ~delay:100.0 (fun () -> Net.crash net "pdp0");
    Engine.schedule (Net.engine net) ~delay:400.0 (fun () -> Net.recover net "pdp0");
    let client = Client.create services ~node:"c" ~subject:(doctor_subject "alice") in
    let served = ref 0 and lat = ref 0.0 and worst = ref 0.0 in
    for i = 1 to duration do
      Engine.schedule (Net.engine net) ~delay:(float_of_int i) (fun () ->
          let t0 = Net.now net in
          Client.request client ~pep:"pep" ~action:"read" ~timeout:10.0 (fun r ->
              match r with
              | Ok (Wire.Granted _) ->
                incr served;
                let d = Net.now net -. t0 in
                lat := !lat +. d;
                if d > !worst then worst := d
              | _ -> ()))
    done;
    Net.run ~until:(float_of_int duration +. 20.0) net;
    ( !served,
      (Pep.stats pep).Pep.failovers,
      1000.0 *. !lat /. float_of_int (max 1 !served),
      1000.0 *. !worst )
  in
  List.iter
    (fun (label, use_discovery) ->
      let served, failovers, lat, worst = run_strategy use_discovery in
      Printf.printf "%-28s %10d %12d %14.2f %12.0f\n" label served failovers lat worst)
    [ ("timeout failover only", false); ("discovery rebinding", true) ]

(* ==================================================================== *)
(* E13 — ablation: target-indexed vs linear policy evaluation           *)
(* ==================================================================== *)

let e13_index_ablation () =
  header "E13  Ablation: target-indexed vs linear evaluation (§3.1 scalability)"
    "bucketing rules by their resource-id targets makes evaluation cost independent \
     of store size, without changing any decision";
  Printf.printf "%8s %14s %14s %10s %12s\n" "rules" "linear (us)" "indexed (us)" "speedup"
    "candidates";
  List.iter
    (fun n ->
      let policy = sized_policy n in
      let idx = Dacs_policy.Index.build policy in
      let ctx = request_for (n - 1) in
      (* Sanity: identical decisions. *)
      assert (
        Decision.equal_decision
          (Policy.evaluate ctx policy).Decision.decision
          (Dacs_policy.Index.evaluate ctx idx).Decision.decision);
      let linear = time_us (fun () -> ignore (Policy.evaluate ctx policy)) in
      let indexed = time_us (fun () -> ignore (Dacs_policy.Index.evaluate ctx idx)) in
      Printf.printf "%8d %14.2f %14.2f %9.1fx %12d\n" n linear indexed (linear /. indexed)
        (Dacs_policy.Index.candidate_count idx ctx))
    [ 10; 100; 1000; 10000 ]

(* ==================================================================== *)
(* E14 — ablation: resilience machinery under a chaos schedule          *)
(* ==================================================================== *)

let e14_resilience () =
  header "E14  Ablation: retry/backoff + circuit breaker + stale cache under chaos"
    "under loss, crash and latency faults, the resilience layers turn most \
     degraded-window denials back into correct grants, without ever granting \
     beyond the policy";
  let module Faults = Dacs_net.Faults in
  let module Rpc = Dacs_net.Rpc in
  let duration = 60 in
  let schedule =
    [
      Faults.Drop_burst { rate = 0.7; window = { Faults.from_ = 5.0; until_ = 20.0 } };
      Faults.Crash_restart { node = "pdp0"; at = 10.0; restart = Some 30.0 };
      Faults.Latency_spike
        { a = "pep"; b = "pdp1"; latency = 1.5; window = { Faults.from_ = 15.0; until_ = 40.0 } };
    ]
  in
  Printf.printf "(2 replicas; 1 req/s for %ds; schedule:\n" duration;
  List.iter (fun s -> Printf.printf "   %s\n" (Faults.describe s)) schedule;
  Printf.printf ")\n\n%-30s %8s %8s %9s %8s %8s %8s\n" "configuration" "granted" "denied"
    "retries" "trips" "stale" "viols";
  let run_config label ~retry ~breaker ~stale =
    let net = Net.create ~seed:11L () in
    let rpc = Rpc.create net in
    let services = Service.create rpc in
    let policy = doctor_read_policy "ws" in
    List.iter (Net.add_node net) [ "pep"; "alice"; "mallory" ];
    let replicas =
      List.init 2 (fun i ->
          let node = Printf.sprintf "pdp%d" i in
          Net.add_node net node;
          ignore (Pdp_service.create services ~node ~name:node ~root:policy ());
          node)
    in
    let cache = Decision_cache.create ~ttl:2.0 () in
    let pep =
      Pep.create services ~node:"pep" ~domain:"d" ~resource:"ws" ~content:"x"
        (Pep.Pull { pdps = replicas; cache = Some cache; call_timeout = 0.4 })
    in
    let retry_policy =
      { Rpc.attempts = 3; base_delay = 0.2; multiplier = 2.0; max_delay = 1.0; jitter = 0.1 }
    in
    (* Retry on every lossy leg: client->PEP and PEP->PDP. *)
    let client_retry = if retry then Some retry_policy else None in
    if retry then Pep.set_retry_policy pep (Some retry_policy);
    if breaker then Rpc.set_breaker rpc (Some { Rpc.failure_threshold = 4; cooldown = 3.0 });
    if stale then Pep.set_stale_window pep 30.0;
    Faults.apply net schedule;
    let alice = Client.create services ~node:"alice" ~subject:(doctor_subject "alice") in
    let mallory =
      Client.create services ~node:"mallory"
        ~subject:[ ("subject-id", Value.String "mallory"); ("role", Value.String "intern") ]
    in
    let granted = ref 0 and denied = ref 0 and violations = ref 0 in
    for i = 1 to duration do
      Engine.schedule (Net.engine net) ~delay:(float_of_int i) (fun () ->
          Client.request alice ~pep:"pep" ~action:"read" ~timeout:10.0 ?retry:client_retry
            (fun r ->
              match r with
              | Ok (Wire.Granted _) -> incr granted
              | _ -> incr denied);
          Client.request mallory ~pep:"pep" ~action:"read" ~timeout:10.0 ?retry:client_retry
            (fun r -> match r with Ok (Wire.Granted _) -> incr violations | _ -> ()))
    done;
    Net.run ~until:(float_of_int duration +. 30.0) net;
    let s = Pep.stats pep in
    Printf.printf "%-30s %8d %8d %9d %8d %8d %8d\n" label !granted !denied s.Pep.retries
      s.Pep.breaker_trips s.Pep.stale_serves !violations
  in
  run_config "failover only" ~retry:false ~breaker:false ~stale:false;
  run_config "+ retry/backoff" ~retry:true ~breaker:false ~stale:false;
  run_config "+ circuit breaker" ~retry:true ~breaker:true ~stale:false;
  run_config "+ stale-cache degradation" ~retry:true ~breaker:true ~stale:true

(* ==================================================================== *)
(* E15 — telemetry overhead                                             *)
(* ==================================================================== *)

let e15_telemetry () =
  header "E15  Telemetry overhead: registry primitives and tracing cost"
    "instrumenting the hot paths costs nanoseconds per event, and a fully \
     traced request stays within a small constant factor of an untraced one";
  let module Metrics = Dacs_telemetry.Metrics in
  let module Rpc = Dacs_net.Rpc in
  (* Registry primitives: the per-event cost paid on every hot path. *)
  let m = Metrics.create () in
  let c = Metrics.counter m ~labels:[ ("node", "pep") ] "bench_total" in
  let g = Metrics.gauge m "bench_gauge" in
  let h = Metrics.histogram m "bench_seconds" in
  Printf.printf "%-38s %10s\n" "primitive" "us/op";
  Printf.printf "%-38s %10.3f\n" "counter inc" (time_us (fun () -> Metrics.inc c));
  Printf.printf "%-38s %10.3f\n" "counter lookup + inc"
    (time_us (fun () -> Metrics.inc (Metrics.counter m ~labels:[ ("node", "pep") ] "bench_total")));
  Printf.printf "%-38s %10.3f\n" "gauge set" (time_us (fun () -> Metrics.set_gauge g 42.));
  Printf.printf "%-38s %10.3f\n" "histogram observe"
    (time_us (fun () -> Metrics.observe h 0.0421));
  (* End-to-end: one full Fig. 3 pull flow (PEP -> PDP -> PIP/PAP), with
     and without span recording, on the simulated network. *)
  let run_flow ~tracing () =
    let net = Net.create ~seed:7L () in
    let rpc = Dacs_net.Rpc.create net in
    let services = Service.create rpc in
    if tracing then Rpc.set_tracing rpc true;
    let domain = Domain.create services ~name:"demo" () in
    Domain.set_local_policy domain (doctor_read_policy "r");
    let pep = Domain.expose_resource domain ~resource:"r" ~content:"x" () in
    Domain.register_user domain ~user:"alice" [ ("role", Value.String "doctor") ];
    Net.add_node net "cli";
    let client =
      Client.create services ~node:"cli" ~subject:[ ("subject-id", Value.String "alice") ]
    in
    Client.request client ~pep:(Pep.node pep) ~action:"read" (fun _ -> ());
    Net.run net
  in
  let off = time_us (run_flow ~tracing:false) in
  let on = time_us (run_flow ~tracing:true) in
  Printf.printf "\n%-38s %10s %10s\n" "full pull flow (sim incl. setup)" "us/req" "ratio";
  Printf.printf "%-38s %10.1f %10s\n" "  tracing off" off "1.00x";
  Printf.printf "%-38s %10.1f %9.2fx\n" "  tracing on (10-span tree)" on (on /. off)

(* ==================================================================== *)
(* E16 — sharded, batched PDP tier: shard count x batch size ablation   *)
(* ==================================================================== *)

let e16_sharded_tier () =
  header "E16  Sharded, batched PDP tier (shard count x batch size ablation)"
    "hash-partitioning the Fig. 3 flow across PDP replicas multiplies sustained \
     throughput near-linearly in shards (>= 3x at 4 shards), and batching cuts \
     per-request message cost without changing any decision";
  let requests = 200 in
  let service_time = 0.004 (* seconds of PDP evaluation capacity per query *) in
  let policy = doctor_read_policy ~id:"vo-policy" ~issuer:"vo" "shared" in
  (* One VO workload run: [requests] distinct users burst at the same
     virtual instant against one enforcement point.  Throughput is
     requests / virtual makespan, so it measures the architecture (queueing
     at the decision points), not the host machine. *)
  let run ~shards ~batch =
    let net, services = fresh () in
    let domain = Domain.create services ~name:"org" () in
    let vo = Vo.form services ~name:"vo" [ domain ] in
    Vo.publish_policy vo policy;
    Net.run net;
    Net.add_node net "vo.pep";
    let tier_stats, pdp_nodes, pep =
      if shards = 0 then begin
        (* Single-PDP baseline: classic pull mode, same capacity model. *)
        Net.add_node net "vo.pdp.single";
        ignore
          (Pdp_service.create services ~node:"vo.pdp.single" ~name:"single" ~root:policy
             ~refresh:Pdp_service.Never ~service_time ());
        ( (fun () -> None),
          [ "vo.pdp.single" ],
          Pep.create services ~node:"vo.pep" ~domain:"vo" ~resource:"shared" ~content:"x"
            (Pep.Pull { pdps = [ "vo.pdp.single" ]; cache = None; call_timeout = 8.0 }) )
      end
      else begin
        let tier, replicas =
          Vo.pdp_tier vo ~node:"vo.pep" ~shards ~batch ~vnodes:128 ~service_time
            ~refresh:Pdp_service.Never ~root:policy ()
        in
        ( (fun () -> Some (Pdp_tier.stats tier)),
          List.map Pdp_service.node replicas,
          Pep.create services ~node:"vo.pep" ~domain:"vo" ~resource:"shared" ~content:"x"
            (Pep.Sharded { tier; cache = None }) )
      end
    in
    let start = Net.now net +. 1.0 in
    let granted = ref 0 and last_answer = ref start in
    List.iter
      (fun i ->
        let node = Printf.sprintf "vo.cli.%d" i in
        Net.add_node net node;
        let client = Client.create services ~node ~subject:(doctor_subject (Printf.sprintf "u%d" i)) in
        Engine.schedule_at (Net.engine net) ~at:start (fun () ->
            Client.request client ~pep:(Pep.node pep) ~action:"read" ~timeout:30.0 (fun r ->
                last_answer := Float.max !last_answer (Net.now net);
                match r with Ok (Wire.Granted _) -> incr granted | _ -> ())))
      (List.init requests (fun i -> i));
    Net.reset_stats net;
    Net.run net;
    let sent = Net.total_sent net in
    let makespan = !last_answer -. start in
    let throughput = float_of_int requests /. makespan in
    let evaluated node =
      Dacs_telemetry.Metrics.counter_value
        (Dacs_telemetry.Metrics.counter (Service.metrics services)
           ~labels:[ ("node", node) ]
           "pdp_queries_total")
    in
    ( !granted,
      makespan,
      throughput,
      float_of_int sent.Net.count /. float_of_int requests,
      tier_stats (),
      List.map (fun n -> (n, evaluated n)) pdp_nodes )
  in
  let _, _, base_tput, _, _, _ = run ~shards:0 ~batch:1 in
  Printf.printf "%-22s %8s %10s %10s %9s %9s %11s\n" "configuration" "granted" "makespan" "req/s"
    "speedup" "msgs/req" "mean batch";
  let failures = ref [] in
  let row label (granted, makespan, tput, msgs, tier, _) =
    let mean_batch =
      match tier with
      | Some s when s.Pdp_tier.batches > 0 ->
        Printf.sprintf "%.1f" (float_of_int s.Pdp_tier.dispatched /. float_of_int s.Pdp_tier.batches)
      | _ -> "-"
    in
    Printf.printf "%-22s %8d %9.3fs %10.0f %8.2fx %9.1f %11s\n" label granted makespan tput
      (tput /. base_tput) msgs mean_batch;
    if granted <> requests then
      failures := Printf.sprintf "%s: only %d/%d granted" label granted requests :: !failures
  in
  row "single PDP (pull)" (run ~shards:0 ~batch:1);
  List.iter (fun shards -> row (Printf.sprintf "%d shards, batch 8" shards) (run ~shards ~batch:8))
    [ 1; 2; 4; 8 ];
  List.iter (fun batch -> row (Printf.sprintf "4 shards, batch %d" batch) (run ~shards:4 ~batch))
    [ 1; 4; 16 ];
  (* The balanced workload the CI smoke test gates on: 4 shards, batch 8. *)
  let _, _, tput4, _, _, per_shard = run ~shards:4 ~batch:8 in
  Printf.printf "\nper-shard evaluations (4 shards, batch 8):\n";
  List.iter (fun (node, n) -> Printf.printf "  %-14s %6d evaluations\n" node n) per_shard;
  let speedup = tput4 /. base_tput in
  if List.exists (fun (_, n) -> n = 0) per_shard then
    failures := "a shard evaluated zero queries under the balanced workload" :: !failures;
  if speedup < 3.0 then
    failures := Printf.sprintf "4-shard speedup %.2fx below 3x" speedup :: !failures;
  Printf.printf "\nE16 CHECK balanced-shards: %s\n"
    (if List.exists (fun (_, n) -> n = 0) per_shard then "FAIL" else "PASS");
  Printf.printf "E16 CHECK speedup>=3x at 4 shards: %s (%.2fx)\n"
    (if speedup < 3.0 then "FAIL" else "PASS")
    speedup;
  List.iter (fun f -> Printf.printf "E16 FAILURE: %s\n" f) !failures;
  record_gate_failures "e16" !failures;
  write_bench_json "e16"
    [
      ("single_pdp_req_s", json_f base_tput);
      ("four_shards_req_s", json_f tput4);
      ("speedup_4_shards", json_f speedup);
      ("gate_failures", json_i (List.length !failures));
    ]

(* ==================================================================== *)
(* E17 — hierarchical caching + batched attribute resolution ablation   *)
(* ==================================================================== *)

let e17_cache_hierarchy () =
  header "E17  Hierarchical caching + batched attribute resolution (ablation)"
    "stacking the cache hierarchy — per-PEP L1, domain-shared L2, PDP attribute \
     cache with one-round-trip batched PIP fetches, single-flight coalescing — \
     cuts warm-path message cost to the bare request/response pair (< 2.2 \
     msgs/req) and attribute RPCs per decision by >= 2x, without changing any \
     decision";
  let users = 12 in
  let actions = [ "read"; "write"; "audit" ] in
  (* Deny-overrides over independent permit conditions: one decision
     needs all three subject attributes, none carried by the client. *)
  let policy =
    Policy.Inline_policy
      (Policy.make ~id:"attr-heavy" ~issuer:"d" ~rule_combining:Combine.Deny_overrides
         [
           Rule.permit ~condition:(Expr.one_of (Expr.subject_attr "role") [ "doctor" ]) "by-role";
           Rule.permit
             ~condition:(Expr.one_of (Expr.subject_attr "clearance") [ "secret" ])
             "by-clearance";
           Rule.permit
             ~condition:(Expr.one_of (Expr.subject_attr "department") [ "cardio" ])
             "by-department";
         ])
  in
  (* One run: two PEP replicas guard the same resource.  Cold phase —
     every (user, action) hits replica 0 twice at the same instant (the
     coalescing opportunity), then once at replica 1 (the L2
     opportunity).  Warm phase — every pair revisits both replicas.
     Decisions must all be Permit; messages and attribute frames are
     counted per phase. *)
  let run ~l2 ~attr_batch ~coalesce =
    let net, services = fresh () in
    let add id =
      Net.add_node net id;
      id
    in
    let pip = Pip.create services ~node:(add "pip") ~name:"pip" in
    let pdp =
      Pdp_service.create services ~node:(add "pdp") ~name:"pdp" ~root:policy ~pips:[ "pip" ]
        ?attr_cache_ttl:(if attr_batch then Some 3600.0 else None)
        ()
    in
    let l2_cache =
      if l2 then Some (Cache_hierarchy.L2.create services ~node:(add "l2") ~ttl:3600.0 ()) else None
    in
    let peps =
      List.init 2 (fun i ->
          let pep =
            Pep.create services ~node:(add (Printf.sprintf "pep%d" i)) ~domain:"d" ~resource:"r"
              ~content:"x"
              (Pep.Pull
                 {
                   pdps = [ "pdp" ];
                   cache = Some (Decision_cache.create ~ttl:3600.0 ());
                   call_timeout = 5.0;
                 })
          in
          Option.iter (fun c -> Pep.set_l2 pep (Some (Cache_hierarchy.L2.node c))) l2_cache;
          Pep.set_coalescing pep coalesce;
          pep)
    in
    let pep0 = List.nth peps 0 and pep1 = List.nth peps 1 in
    let clients =
      List.init users (fun i ->
          let user = Printf.sprintf "u%d" i in
          List.iter
            (fun (id, v) -> Pip.add_subject_attribute pip ~subject:user ~id (Value.String v))
            [ ("role", "doctor"); ("clearance", "secret"); ("department", "cardio") ];
          Client.create services
            ~node:(add ("cli." ^ user))
            ~subject:[ ("subject-id", Value.String user) ])
    in
    let granted = ref 0 and total = ref 0 and lats = ref [] in
    let issue client pep action ~at =
      incr total;
      Engine.schedule_at (Net.engine net) ~at (fun () ->
          let t0 = Net.now net in
          Client.request client ~pep:(Pep.node pep) ~action ~timeout:5.0 (fun r ->
              lats := (Net.now net -. t0) :: !lats;
              match r with Ok (Wire.Granted _) -> incr granted | _ -> ()))
    in
    (* Cold phase: spread (user, action) slots one virtual second apart
       so the PDP attribute cache can fill between a user's actions. *)
    Net.reset_stats net;
    let slot = ref (Net.now net +. 1.0) in
    List.iteri
      (fun _ client ->
        List.iter
          (fun action ->
            issue client pep0 action ~at:!slot;
            issue client pep0 action ~at:!slot;
            (* concurrent duplicate *)
            slot := !slot +. 1.0)
          actions)
      clients;
    let replica_phase = !slot +. 6.0 in
    List.iteri
      (fun i client ->
        List.iteri
          (fun ai action ->
            issue client pep1 action
              ~at:(replica_phase +. float_of_int ((i * List.length actions) + ai)))
          actions)
      clients;
    Net.run net;
    let cold_requests = !total in
    let cold_sent = (Net.total_sent net).Net.count in
    (* Warm phase: every pair revisits both replicas; all answers must
       come from L1. *)
    Net.reset_stats net;
    let warm_at = Net.now net +. 1.0 in
    List.iter
      (fun client ->
        List.iter
          (fun action ->
            issue client pep0 action ~at:warm_at;
            issue client pep1 action ~at:warm_at)
          actions)
      clients;
    Net.run net;
    let warm_requests = !total - cold_requests in
    let warm_sent = (Net.total_sent net).Net.count in
    let stats = List.map Pep.stats peps in
    let sum f = List.fold_left (fun acc s -> acc + f s) 0 stats in
    let sorted = List.sort compare !lats in
    let pct p =
      match sorted with
      | [] -> 0.0
      | _ ->
        let n = List.length sorted in
        List.nth sorted (min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))
    in
    ( !granted,
      !total,
      float_of_int cold_sent /. float_of_int cold_requests,
      float_of_int warm_sent /. float_of_int warm_requests,
      (Pdp_service.stats pdp).Pdp_service.pip_fetches,
      sum (fun s -> s.Pep.l2_hits),
      sum (fun s -> s.Pep.coalesced),
      1000.0 *. pct 0.50,
      1000.0 *. pct 0.99 )
  in
  let configs =
    [
      ("l1 only", false, false, false);
      ("l1+l2", true, false, false);
      ("l1+l2+attr-batch", true, true, false);
      ("full (+coalescing)", true, true, true);
    ]
  in
  Printf.printf "%-20s %9s %9s %9s %11s %8s %10s %9s %9s\n" "configuration" "granted" "cold m/r"
    "warm m/r" "attr frames" "l2 hits" "coalesced" "p50 (ms)" "p99 (ms)";
  let failures = ref [] in
  let results =
    List.map
      (fun (label, l2, attr_batch, coalesce) ->
        let ((granted, total, cold_mpr, warm_mpr, frames, l2_hits, coalesced, p50, p99) as r) =
          run ~l2 ~attr_batch ~coalesce
        in
        Printf.printf "%-20s %4d/%-4d %9.2f %9.2f %11d %8d %10d %9.2f %9.2f\n" label granted total
          cold_mpr warm_mpr frames l2_hits coalesced p50 p99;
        if granted <> total then
          failures := Printf.sprintf "%s: only %d/%d granted" label granted total :: !failures;
        (label, r))
      configs
  in
  let frames_of label =
    let _, (_, _, _, _, frames, _, _, _, _) = (label, List.assoc label results) in
    frames
  in
  let _, _, _, full_warm, _, _, _, _, _ = List.assoc "full (+coalescing)" results in
  let legacy = frames_of "l1+l2" and batched = frames_of "l1+l2+attr-batch" in
  let reduction = float_of_int legacy /. float_of_int (max 1 batched) in
  if full_warm >= 2.2 then
    failures := Printf.sprintf "warm msgs/req %.2f not < 2.2" full_warm :: !failures;
  if reduction < 2.0 then
    failures := Printf.sprintf "attribute-frame reduction %.2fx below 2x" reduction :: !failures;
  Printf.printf "\nE17 CHECK warm msgs/req < 2.2 (full config): %s (%.2f)\n"
    (if full_warm < 2.2 then "PASS" else "FAIL")
    full_warm;
  Printf.printf "E17 CHECK attr RPCs/decision reduced >= 2x by batching: %s (%.2fx, %d -> %d frames)\n"
    (if reduction >= 2.0 then "PASS" else "FAIL")
    reduction legacy batched;
  List.iter (fun f -> Printf.printf "E17 FAILURE: %s\n" f) !failures;
  record_gate_failures "e17" !failures;
  write_bench_json "e17"
    [
      ("warm_msgs_per_req", json_f full_warm);
      ("attr_frame_reduction", json_f reduction);
      ("attr_frames_sequential", json_i legacy);
      ("attr_frames_batched", json_i batched);
      ("gate_failures", json_i (List.length !failures));
    ]

(* ==================================================================== *)
(* E18 — workload engine: overload protection ablation                  *)
(* ==================================================================== *)

let e18_workload () =
  header "E18  Open-loop workload vs overload protection (rate x shards x cache)"
    "under open-loop Poisson arrivals past saturation, the bounded admission \
     queue sheds the excess (pep_shed_total > 0) while p99 latency of admitted \
     requests stays bounded; below saturation nothing is shed; the L1 decision \
     cache relieves shedding at the same offered rate; and the whole report is \
     byte-identical across same-seed runs";
  let module W = Dacs_workload.Workload in
  let scenario ~rate ~shards ~cache_ttl =
    {
      W.default with
      W.seed = 7;
      shards;
      cache_ttl;
      arrivals = W.Open_loop { rate };
      duration = 4.0;
    }
  in
  Printf.printf "%-28s %8s %8s %8s %6s %9s %8s %9s %9s\n" "configuration" "offered" "granted"
    "shed" "pdp-ov" "req/s" "p50 (s)" "p99 (s)" "max (s)";
  let rows =
    List.concat_map
      (fun rate ->
        List.concat_map
          (fun shards ->
            List.map
              (fun cache_ttl ->
                let r = W.run (scenario ~rate ~shards ~cache_ttl) in
                let label =
                  Printf.sprintf "%4.0f req/s %d shard%s %s" rate shards
                    (if shards = 1 then " " else "s")
                    (if cache_ttl > 0.0 then "cache" else "no-cache")
                in
                Printf.printf "%-28s %8d %8d %8d %6d %9.1f %8.4f %9.4f %9.4f\n" label r.W.offered
                  r.W.granted r.W.shed r.W.pdp_overloads r.W.throughput r.W.latency.W.p50
                  r.W.latency.W.p99 r.W.latency.W.max;
                ((rate, shards, cache_ttl), r))
              [ 0.0; 30.0 ])
          [ 1; 4 ])
      [ 100.0; 400.0; 1600.0 ]
  in
  let get rate shards cache_ttl = List.assoc (rate, shards, cache_ttl) rows in
  let failures = ref [] in
  let check name ok detail =
    Printf.printf "E18 CHECK %s: %s (%s)\n" name (if ok then "PASS" else "FAIL") detail;
    if not ok then failures := Printf.sprintf "%s (%s)" name detail :: !failures
  in
  (* Every row must conserve requests regardless of load. *)
  let conserved = List.for_all (fun (_, r) -> W.conservation_ok r) rows in
  print_newline ();
  check "conservation"
    conserved
    (Printf.sprintf "%d configurations, completed = offered and answers sum up in each" (List.length rows));
  let saturated = get 1600.0 1 0.0 in
  check "shedding-engages" (saturated.W.shed > 0)
    (Printf.sprintf "1600 req/s on 1 shard no-cache sheds %d of %d" saturated.W.shed
       saturated.W.offered);
  let worst_p99 =
    List.fold_left (fun acc (_, r) -> Float.max acc r.W.latency.W.p99) 0.0 rows
  in
  check "p99-bounded" (worst_p99 <= 2.0)
    (Printf.sprintf "worst admitted p99 %.4fs <= 2.0s across the grid" worst_p99);
  let light = get 100.0 4 0.0 in
  check "no-shed-below-saturation"
    (light.W.shed = 0 && light.W.pdp_overloads = 0)
    (Printf.sprintf "100 req/s on 4 shards sheds %d, overloads %d" light.W.shed
       light.W.pdp_overloads);
  let cached = get 1600.0 1 30.0 in
  check "cache-relieves-shedding"
    (cached.W.shed < saturated.W.shed)
    (Printf.sprintf "shed %d with cache vs %d without at 1600 req/s on 1 shard" cached.W.shed
       saturated.W.shed);
  let rerun = W.run (scenario ~rate:1600.0 ~shards:1 ~cache_ttl:0.0) in
  check "determinism"
    (W.render rerun = W.render saturated)
    "same-seed saturating run renders byte-identical";
  (* Compiled-evaluation ablation: with a per-rule scan cost, the
     interpreter pays for the whole serving policy on every query while
     compiled dispatch pays only for the requested resource's bucket —
     the same shard gains capacity and sheds less at the same offered
     rate, with identical decisions (enforced by the oracle suite). *)
  let heavy compiled =
    {
      W.default with
      W.seed = 7;
      shards = 1;
      peps = 8;
      rule_cost = 0.002;
      compiled;
      arrivals = W.Open_loop { rate = 60.0 };
      duration = 4.0;
    }
  in
  let interp = W.run (heavy false) in
  let comp = W.run (heavy true) in
  Printf.printf "\ncompiled-evaluation ablation (1 shard, 17-rule serving policy, 2 ms/rule):\n";
  Printf.printf "%-28s %8s %8s %8s %6s %9s %9s\n" "evaluator" "offered" "granted" "shed" "pdp-ov"
    "req/s" "p99 (s)";
  List.iter
    (fun (label, r) ->
      Printf.printf "%-28s %8d %8d %8d %6d %9.1f %9.4f\n" label r.W.offered r.W.granted r.W.shed
        r.W.pdp_overloads r.W.throughput r.W.latency.W.p99)
    [ ("interpreted", interp); ("compiled", comp) ];
  (* The interpreter's shard saturates at ~26 req/s (0.004 + 17 x 0.002
     per query); compiled dispatch scans ~3 candidates, lifting capacity
     past the offered 60 req/s — so it grants more and stops tripping
     the shard's inflight bound. *)
  check "compiled-raises-capacity"
    (float_of_int comp.W.granted > float_of_int interp.W.granted *. 1.5)
    (Printf.sprintf "compiled grants %d vs interpreted %d of %d offered" comp.W.granted
       interp.W.granted comp.W.offered);
  check "compiled-relieves-overload"
    (comp.W.pdp_overloads < interp.W.pdp_overloads)
    (Printf.sprintf "pdp overloads %d compiled vs %d interpreted" comp.W.pdp_overloads
       interp.W.pdp_overloads);
  List.iter (fun f -> Printf.printf "E18 FAILURE: %s\n" f) !failures;
  record_gate_failures "e18" !failures;
  write_bench_json "e18"
    [
      ("shed_saturated_1_shard", json_i saturated.W.shed);
      ("shed_saturated_cached", json_i cached.W.shed);
      ("worst_admitted_p99_s", json_f worst_p99);
      ("interpreted_granted", json_i interp.W.granted);
      ("compiled_granted", json_i comp.W.granted);
      ("interpreted_pdp_overloads", json_i interp.W.pdp_overloads);
      ("compiled_pdp_overloads", json_i comp.W.pdp_overloads);
      ("gate_failures", json_i (List.length !failures));
    ]

(* ==================================================================== *)
(* E19 — compiled vs interpreted policy evaluation                      *)
(* ==================================================================== *)

let e19_compiled_eval () =
  header "E19  Compiled vs interpreted evaluation (target-indexed dispatch)"
    "compiling the policy tree into per-(resource, action) buckets makes \
     per-decision cost depend on the matching rules, not the store size: \
     >= 5x cheaper on a deep tree, identical decisions everywhere";
  let failures = ref [] in
  let result_equal (a : Decision.result) (b : Decision.result) =
    Decision.equal_decision a.Decision.decision b.Decision.decision
    && a.Decision.obligations = b.Decision.obligations
  in
  (* Flat policies: one leaf, n resource-pinned rules, worst-case request. *)
  Printf.printf "%8s %16s %14s %10s %12s\n" "rules" "interpreted (us)" "compiled (us)" "speedup"
    "candidates";
  let flat_speedups =
    List.map
      (fun n ->
        let child = Policy.Inline_policy (sized_policy n) in
        let c = Dacs_policy.Compiled.compile child in
        let ctx = request_for (n - 1) in
        if not (result_equal (Policy.evaluate_child ctx child) (Dacs_policy.Compiled.evaluate ctx c))
        then failures := Printf.sprintf "flat %d rules: compiled decision diverged" n :: !failures;
        let interp = time_us (fun () -> ignore (Policy.evaluate_child ctx child)) in
        let comp = time_us (fun () -> ignore (Dacs_policy.Compiled.evaluate ctx c)) in
        Printf.printf "%8d %16.2f %14.2f %9.1fx %12d\n" n interp comp (interp /. comp)
          (Dacs_policy.Compiled.candidate_count c ctx);
        (n, interp /. comp))
      [ 10; 100; 1000; 10000 ]
  in
  (* Deep tree: a policy set fanning out to many leaves, each with many
     pinned rules — the shape where an interpreter walks everything and
     compiled dispatch touches one bucket per leaf. *)
  let policies = 16 and rules_per = 64 in
  let deep =
    Policy.Inline_set
      (Policy.make_set ~id:"deep" ~policy_combining:Combine.Deny_overrides
         (List.init policies (fun p ->
              Policy.Inline_policy
                (Policy.make
                   ~id:(Printf.sprintf "p%d" p)
                   ~rule_combining:Combine.First_applicable
                   (List.init rules_per (fun i ->
                        Rule.permit
                          ~target:
                            Target.(
                              any |> resource_is "resource-id" (Printf.sprintf "res%d-%d" p i))
                          (Printf.sprintf "r%d-%d" p i)))))))
  in
  let c = Dacs_policy.Compiled.compile deep in
  let deep_ctx =
    Context.make ~subject:(doctor_subject "alice")
      ~resource:
        [ ("resource-id", Value.String (Printf.sprintf "res%d-%d" (policies - 1) (rules_per - 1))) ]
      ~action:[ ("action-id", Value.String "read") ]
      ()
  in
  (* Equivalence over a spread of requests, including misses. *)
  List.iter
    (fun rid ->
      let ctx =
        Context.make ~subject:(doctor_subject "alice")
          ~resource:[ ("resource-id", Value.String rid) ]
          ~action:[ ("action-id", Value.String "read") ]
          ()
      in
      if not (result_equal (Policy.evaluate_child ctx deep) (Dacs_policy.Compiled.evaluate ctx c))
      then failures := Printf.sprintf "deep tree: compiled diverged on %s" rid :: !failures)
    [ "res0-0"; "res7-31"; "res15-63"; "nosuch" ];
  let interp = time_us (fun () -> ignore (Policy.evaluate_child deep_ctx deep)) in
  let comp = time_us (fun () -> ignore (Dacs_policy.Compiled.evaluate deep_ctx c)) in
  let deep_speedup = interp /. comp in
  Printf.printf "\ndeep tree (%d policies x %d rules, worst-case request):\n" policies rules_per;
  Printf.printf "%-28s %14.2f us\n%-28s %14.2f us  (%.1fx, %d candidates of %d rules)\n"
    "interpreted" interp "compiled" comp deep_speedup
    (Dacs_policy.Compiled.candidate_count c deep_ctx)
    (Dacs_policy.Compiled.rule_count c);
  if deep_speedup < 5.0 then
    failures := Printf.sprintf "deep-tree speedup %.1fx below 5x" deep_speedup :: !failures;
  let diverged =
    List.exists
      (fun f ->
        let has sub =
          let n = String.length sub in
          let rec go i = i + n <= String.length f && (String.sub f i n = sub || go (i + 1)) in
          go 0
        in
        has "diverged")
      !failures
  in
  Printf.printf "\nE19 CHECK decisions-identical: %s\n" (if diverged then "FAIL" else "PASS");
  Printf.printf "E19 CHECK compiled-speedup>=5x on deep tree: %s (%.1fx)\n"
    (if deep_speedup >= 5.0 then "PASS" else "FAIL")
    deep_speedup;
  List.iter (fun f -> Printf.printf "E19 FAILURE: %s\n" f) !failures;
  record_gate_failures "e19" !failures;
  write_bench_json "e19"
    (List.map (fun (n, s) -> (Printf.sprintf "flat_speedup_%d_rules" n, json_f s)) flat_speedups
    @ [
        ("deep_tree_speedup", json_f deep_speedup);
        ("deep_tree_interpreted_us", json_f interp);
        ("deep_tree_compiled_us", json_f comp);
        ("gate_failures", json_i (List.length !failures));
      ])

(* ==================================================================== *)
(* E20 — bench trajectory ledger + regression gate                      *)
(* ==================================================================== *)

(* The serving path's headline numbers as a committed trajectory rather
   than one-off thresholds: every run appends a ledger entry (keyed by
   $DACS_PR) to bench/history/ledger.jsonl and gates its own
   deterministic virtual-clock metrics — steady-state p99, messages per
   request, saturated shedding — against the previous entry with a
   tolerance band.  Wall-clock numbers (e19 speedups, micro) are
   recorded in the embedded snapshots but never gated: only metrics that
   are byte-identical per seed can fail a build honestly. *)

let e20_tolerance = 1.10

let read_file_opt path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Some s
  end
  else None

let last_line s =
  let lines = String.split_on_char '\n' s in
  List.fold_left (fun acc l -> if String.trim l = "" then acc else Some l) None lines

(* Pull a numeric field out of a ledger line by its quoted key — the
   entries are written by this file, so the first occurrence is the e20
   object's own field. *)
let find_float_field line key =
  let needle = Printf.sprintf "%S:" key in
  let nlen = String.length needle and llen = String.length line in
  let rec search i =
    if i + nlen > llen then None
    else if String.sub line i nlen = needle then begin
      let start = i + nlen in
      let stop = ref start in
      while
        !stop < llen && (match line.[!stop] with ',' | '}' | ']' -> false | _ -> true)
      do
        incr stop
      done;
      float_of_string_opt (String.trim (String.sub line start (!stop - start)))
    end
    else search (i + 1)
  in
  search 0

let e20_trajectory () =
  header "E20  Bench trajectory ledger + regression gate"
    "the serving path's deterministic metrics (steady p99, messages per \
     request, saturated shedding) must not worsen beyond tolerance against \
     the previous committed ledger entry; every run appends its own entry \
     with the e16..e19 snapshots embedded, so the trajectory across PRs is \
     reviewable history, not folklore";
  let module W = Dacs_workload.Workload in
  let steady = W.run { W.default with W.seed = 11; cache_ttl = 30.0; duration = 4.0 } in
  let saturated =
    W.run
      {
        W.default with
        W.seed = 11;
        shards = 1;
        arrivals = W.Open_loop { rate = 1600.0 };
        duration = 2.0;
      }
  in
  let p99 = steady.W.latency.W.p99 in
  let mpr = float_of_int steady.W.messages /. float_of_int steady.W.offered in
  let shed = saturated.W.shed in
  let pr = match Sys.getenv_opt "DACS_PR" with Some p when p <> "" -> p | _ -> "local" in
  let dir = history_dir () in
  let ledger = Filename.concat dir "ledger.jsonl" in
  Printf.printf "this run (pr=%s):\n" pr;
  Printf.printf "  %-32s %10.6f s\n" "steady-state p99 (cached, 200 req/s)" p99;
  Printf.printf "  %-32s %10.2f\n" "messages per request (steady)" mpr;
  Printf.printf "  %-32s %10d\n" "saturated shed (1600 req/s, 1 shard)" shed;
  let failures = ref [] in
  let check name ok detail =
    Printf.printf "E20 CHECK %s: %s (%s)\n" name (if ok then "PASS" else "FAIL") detail;
    if not ok then failures := Printf.sprintf "%s (%s)" name detail :: !failures
  in
  print_newline ();
  (match Option.bind (read_file_opt ledger) last_line with
  | None -> Printf.printf "E20 CHECK regression: PASS (first ledger entry, nothing to compare)\n"
  | Some prev -> (
    match
      ( find_float_field prev "p99_s",
        find_float_field prev "msgs_per_req",
        find_float_field prev "shed_saturated" )
    with
    | Some prev_p99, Some prev_mpr, Some prev_shed ->
      check "p99-regression"
        (p99 <= (prev_p99 *. e20_tolerance) +. 1e-9)
        (Printf.sprintf "%.6fs vs %.6fs last entry, tolerance %d%%" p99 prev_p99
           (int_of_float ((e20_tolerance -. 1.0) *. 100.0)));
      check "msgs-per-req-regression"
        (mpr <= (prev_mpr *. e20_tolerance) +. 1e-9)
        (Printf.sprintf "%.2f vs %.2f last entry, tolerance %d%%" mpr prev_mpr
           (int_of_float ((e20_tolerance -. 1.0) *. 100.0)));
      check "shed-regression"
        (float_of_int shed <= Float.ceil (prev_shed *. e20_tolerance) +. 1e-9)
        (Printf.sprintf "%d vs %.0f last entry, tolerance %d%%" shed prev_shed
           (int_of_float ((e20_tolerance -. 1.0) *. 100.0)))
    | _ ->
      check "ledger-parseable" false
        (Printf.sprintf "could not parse previous entry in %s" ledger)));
  (* Append this run's entry, embedding whatever e16..e19 snapshots the
     run produced (absent when e20 runs standalone). *)
  let minify s = String.map (fun c -> if c = '\n' then ' ' else c) (String.trim s) in
  let snapshots =
    List.filter_map
      (fun tag ->
        Option.map
          (fun s -> Printf.sprintf "%S:%s" tag (minify s))
          (read_file_opt (Filename.concat dir (Printf.sprintf "BENCH_%s.json" tag))))
      [ "e16"; "e17"; "e18"; "e19"; "e21"; "e22"; "e23" ]
  in
  ensure_dir dir;
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 ledger in
  Printf.fprintf oc
    "{\"pr\":%S,\"e20\":{\"p99_s\":%.6f,\"msgs_per_req\":%.4f,\"shed_saturated\":%d},\"snapshots\":{%s}}\n"
    pr p99 mpr shed (String.concat "," snapshots);
  close_out oc;
  Printf.printf "\nledger: appended entry for %S to %s (%d embedded snapshots)\n" pr ledger
    (List.length snapshots);
  List.iter (fun f -> Printf.printf "E20 FAILURE: %s\n" f) !failures;
  record_gate_failures "e20" !failures;
  write_bench_json "e20"
    [
      ("steady_p99_s", json_f p99);
      ("steady_msgs_per_req", json_f mpr);
      ("saturated_shed", json_i shed);
      ("gate_failures", json_i (List.length !failures));
    ]

(* ==================================================================== *)
(* E21 — partition -> heal ablation (offline authorization)             *)
(* ==================================================================== *)

(* Two deterministic measurements of the offline mode:

   - the workload ablation: the same partition-window scenario run with
     and without offline replicas — fail-closed errors vs signed-log
     serves;
   - the reconciliation cost: a 4-domain mesh diverges across a
     partition (concurrent grants, revocations and offline decisions),
     then heals over a ring anti-entropy topology — convergence rounds,
     replayed events, deny-wins conflicts and retroactive invalidations
     are all virtual-clock deterministic, so they gate against the
     previous ledger entry like the e20 trio. *)

let e21_offline () =
  header "E21  Partition -> heal ablation (offline authorization)"
    "a partitioned domain serves from its signed event log instead of failing \
     closed, and heal reconverges every replica by deny-wins replay in a \
     bounded number of anti-entropy rounds — convergence rounds, replayed \
     events and retroactive invalidations are deterministic and must not \
     worsen against the previous ledger entry";
  let module W = Dacs_workload.Workload in
  let partition = Some { W.from = 1.0; until = 3.0 } in
  let closed = W.run { W.default with W.seed = 11; partition } in
  let served = W.run { W.default with W.seed = 11; partition; offline = true } in
  Printf.printf "workload ablation (partition window [1s,3s) of a %.0fs run, seed 11):\n"
    W.default.W.duration;
  Printf.printf "  %-28s %8s %8s %8s\n" "" "errors" "offline" "granted";
  Printf.printf "  %-28s %8d %8d %8d\n" "fail-closed (no replicas)" closed.W.errors
    closed.W.offline_serves closed.W.granted;
  Printf.printf "  %-28s %8d %8d %8d\n" "offline replicas" served.W.errors
    served.W.offline_serves served.W.granted;
  (* --- reconciliation: 4 domains, 2-2 partition, ring heal ------------- *)
  let module O = Offline in
  let n = 4 in
  let now = ref 0.0 in
  let tick () = now := !now +. 1.0 in
  let reps =
    Array.init n (fun i ->
        O.create ~now:(fun () -> !now) ~key:"e21-mesh-key"
          ~author:(Printf.sprintf "dom%d" i) ())
  in
  let pol =
    Policy.make ~id:"e21" ~rule_combining:Combine.First_applicable
      [
        Rule.permit ~condition:(Expr.one_of (Expr.subject_attr "role") [ "doctor" ]) "doctors";
        Rule.deny "default-deny";
      ]
  in
  let user u = Printf.sprintf "user%d" u in
  let ctx_for u =
    Context.make
      ~subject:[ ("subject-id", Value.String (user u)) ]
      ~resource:[ ("resource-id", Value.String "chart") ]
      ~action:[ ("action-id", Value.String "read") ]
      ()
  in
  (* one pull round over a connectivity relation; returns events moved *)
  let sync_round conn =
    let moved = ref 0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j && conn i j then
          match O.admit reps.(i) (O.missing_for reps.(j) ~frontier:(O.frontier reps.(i))) with
          | Ok k -> moved := !moved + k
          | Error e -> Printf.printf "  !! sync rejected: %s\n" (O.sync_error_to_string e)
      done
    done;
    !moved
  in
  let full _ _ = true in
  let intra i j = i < 2 = (j < 2) in
  let ring i j = j = (i + 1) mod n in
  (* shared history: policy + ten doctors, fully synced *)
  tick ();
  O.publish reps.(0) (Policy.Inline_policy pol);
  for u = 0 to 9 do
    tick ();
    O.grant reps.(0) ~subject:(user u) ~attr:"role" ~value:"doctor"
  done;
  ignore (sync_round full);
  (* partition {dom0,dom1} | {dom2,dom3}: component A grants five new
     users and keeps deciding for the old ones; component B revokes the
     old ones (and two of A's concurrent grants' subjects — the deny-wins
     races).  Intra-component anti-entropy keeps each side converged. *)
  for u = 10 to 14 do
    tick ();
    O.grant reps.(0) ~subject:(user u) ~attr:"role" ~value:"doctor"
  done;
  let offline_decides = ref 0 in
  for u = 0 to 4 do
    tick ();
    (match O.decide reps.(0) (ctx_for u) with Some _ -> incr offline_decides | None -> ());
    tick ();
    O.revoke reps.(2) ~subject:(user u) ~attr:"role"
  done;
  tick ();
  O.revoke reps.(3) ~subject:(user 10) ~attr:"role";
  tick ();
  O.revoke reps.(3) ~subject:(user 11) ~attr:"role";
  ignore (sync_round intra);
  (* heal over the ring: count rounds until every digest is identical *)
  let converged () =
    let d0 = O.state_digest reps.(0) in
    Array.for_all (fun o -> O.state_digest o = d0) reps
  in
  let rounds = ref 0 in
  while (not (converged ())) && !rounds < 16 do
    incr rounds;
    ignore (sync_round ring)
  done;
  let total f = Array.fold_left (fun acc o -> acc + f (O.stats o)) 0 reps in
  let replayed = total (fun s -> s.O.replayed_events) in
  let invalidations = total (fun s -> s.O.invalidations) in
  let conflicts = List.length (O.conflicts reps.(0)) in
  Printf.printf "\nreconciliation (4 domains, 2-2 partition, ring anti-entropy):\n";
  Printf.printf "  %-32s %8d\n" "offline decisions under partition" !offline_decides;
  Printf.printf "  %-32s %8d\n" "convergence rounds (ring)" !rounds;
  Printf.printf "  %-32s %8d\n" "events replayed (all replicas)" replayed;
  Printf.printf "  %-32s %8d\n" "retroactive invalidations" invalidations;
  Printf.printf "  %-32s %8d\n" "deny-wins conflicts" conflicts;
  print_newline ();
  let failures = ref [] in
  let check name ok detail =
    Printf.printf "E21 CHECK %s: %s (%s)\n" name (if ok then "PASS" else "FAIL") detail;
    if not ok then failures := Printf.sprintf "%s (%s)" name detail :: !failures
  in
  check "offline-serves-partition"
    (closed.W.errors > 0 && served.W.offline_serves > 0 && served.W.errors < closed.W.errors)
    (Printf.sprintf "errors %d -> %d, %d offline serves" closed.W.errors served.W.errors
       served.W.offline_serves);
  check "post-heal-convergence" (converged ())
    (Printf.sprintf "all digests identical after %d ring rounds" !rounds);
  check "deny-wins"
    ((not (List.mem (user 10, "role", "doctor") (O.surviving_grants reps.(0))))
    && List.mem (user 12, "role", "doctor") (O.surviving_grants reps.(0)))
    "concurrent revoke defeats the offline grant; uncontested grants survive";
  check "retroactive-invalidation"
    (invalidations >= n)
    (Printf.sprintf "%d contradicted offline decisions purged" invalidations);
  (* regression gates against the previous ledger entry's embedded e21
     snapshot (absent on the first run: nothing to compare) *)
  let ledger = Filename.concat (history_dir ()) "ledger.jsonl" in
  (match Option.bind (read_file_opt ledger) last_line with
  | None -> Printf.printf "E21 CHECK regression: PASS (no ledger, nothing to compare)\n"
  | Some prev -> (
    match
      ( find_float_field prev "convergence_rounds",
        find_float_field prev "replayed_events",
        find_float_field prev "retroactive_invalidations" )
    with
    | Some prev_rounds, Some prev_replayed, Some prev_inval ->
      check "convergence-rounds-regression"
        (float_of_int !rounds <= (prev_rounds *. e20_tolerance) +. 1e-9)
        (Printf.sprintf "%d vs %.0f last entry, tolerance %d%%" !rounds prev_rounds
           (int_of_float ((e20_tolerance -. 1.0) *. 100.0)));
      check "replayed-events-regression"
        (float_of_int replayed <= (prev_replayed *. e20_tolerance) +. 1e-9)
        (Printf.sprintf "%d vs %.0f last entry, tolerance %d%%" replayed prev_replayed
           (int_of_float ((e20_tolerance -. 1.0) *. 100.0)));
      check "invalidations-regression"
        (float_of_int invalidations <= (prev_inval *. e20_tolerance) +. 1e-9)
        (Printf.sprintf "%d vs %.0f last entry, tolerance %d%%" invalidations prev_inval
           (int_of_float ((e20_tolerance -. 1.0) *. 100.0)))
    | _ ->
      Printf.printf
        "E21 CHECK regression: PASS (previous entry has no e21 snapshot, nothing to compare)\n"));
  List.iter (fun f -> Printf.printf "E21 FAILURE: %s\n" f) !failures;
  record_gate_failures "e21" !failures;
  write_bench_json "e21"
    [
      ("fail_closed_errors", json_i closed.W.errors);
      ("offline_serves", json_i served.W.offline_serves);
      ("offline_errors", json_i served.W.errors);
      ("offline_decides_partition", json_i !offline_decides);
      ("convergence_rounds", json_i !rounds);
      ("replayed_events", json_i replayed);
      ("retroactive_invalidations", json_i invalidations);
      ("conflicts", json_i conflicts);
      ("gate_failures", json_i (List.length !failures));
    ]

(* ==================================================================== *)
(* E22 — million-user scale: key scheme x cache tier                    *)
(* ==================================================================== *)

(* The serving-path scale ablation behind the interned-identity rework:
   packed integer request keys against the legacy sorted-string +
   SHA-256 scheme, measured three ways —

   - key construction alone (the per-request cost the swap removes);
   - warm-L1 decide throughput under a 1M-user Zipf draw (wall-clock,
     so reported and gated only as a within-run ratio);
   - a full engine run at 1M users under both schemes: decisions must
     be identical, reports byte-identical per seed, and the lazy
     workload state must stay O(active).

   Resident key bytes come from {!Decision_cache.key_bytes}: the packed
   scheme must at least halve what the cache pins per entry. *)

let e22_scale () =
  header "E22  Million-user serving path (key scheme x cache tier)"
    "interning identities and packing cache keys as integer tuples makes the \
     warm decide path >= 2x faster than the sorted-string + SHA-256 scheme at \
     a 1M-user Zipf working set, at least halves resident key bytes, and \
     changes no decision; the workload engine completes 1M-user runs \
     materialising state only for active users";
  let module W = Dacs_workload.Workload in
  let with_scheme scheme f =
    let saved = Decision_cache.key_scheme () in
    Decision_cache.set_key_scheme scheme;
    Fun.protect ~finally:(fun () -> Decision_cache.set_key_scheme saved) f
  in
  let failures = ref [] in
  let check name ok detail =
    Printf.printf "E22 CHECK %s: %s (%s)\n" name (if ok then "PASS" else "FAIL") detail;
    if not ok then failures := Printf.sprintf "%s (%s)" name detail :: !failures
  in
  (* -- part 1: key construction ------------------------------------- *)
  (* The e17 attribute shape: identity plus the role/clearance/department
     triple a PIP would have resolved, over a 16-resource estate. *)
  let ctx_for u =
    Context.make
      ~subject:
        [
          ("subject-id", Value.String (Printf.sprintf "user%d" u));
          ("role", Value.String "doctor");
          ("clearance", Value.String "secret");
          ("department", Value.String (Printf.sprintf "dept%d" (u mod 8)));
        ]
      ~resource:
        [
          ("resource-id", Value.String (Printf.sprintf "res%d" (u mod 16)));
          ("owner", Value.String (Printf.sprintf "dept%d" (u mod 8)));
        ]
      ~action:[ ("action-id", Value.String "read") ]
      ()
  in
  let key_ctxs = Array.init 256 ctx_for in
  let spin = ref 0 in
  let cycle f () =
    f key_ctxs.(!spin land 255) |> ignore;
    incr spin
  in
  let sha_us = time_us (cycle Decision_cache.sha_request_key) in
  let packed_us = time_us (cycle Intern.request_key) in
  let key_speedup = sha_us /. packed_us in
  Printf.printf "key construction (256-context cycle):\n";
  Printf.printf "  %-32s %10.3f us\n" "sha-hex (sort + format + SHA-256)" sha_us;
  Printf.printf "  %-32s %10.3f us\n" "packed (interned atom tuple)" packed_us;
  (* -- part 2: warm-L1 decide throughput, 1M-user Zipf --------------- *)
  let population = 1_000_000 and draws = 120_000 and skew = 1.1 in
  (* Walker alias sampler, same construction as the workload engine's:
     O(n) setup, one uniform draw per sample. *)
  let sample_users () =
    let rng = Rng.create 0xe22L in
    let scaled = Array.init population (fun i -> 1.0 /. (float_of_int (i + 1) ** skew)) in
    let total = Array.fold_left ( +. ) 0.0 scaled in
    let norm = float_of_int population /. total in
    Array.iteri (fun i w -> scaled.(i) <- w *. norm) scaled;
    let prob = Array.make population 1.0 in
    let alias = Array.init population Fun.id in
    let small = ref [] and large = ref [] in
    for i = population - 1 downto 0 do
      if scaled.(i) < 1.0 then small := i :: !small else large := i :: !large
    done;
    let rec pair () =
      match (!small, !large) with
      | s :: ss, l :: ls ->
        prob.(s) <- scaled.(s);
        alias.(s) <- l;
        scaled.(l) <- scaled.(l) -. (1.0 -. scaled.(s));
        small := ss;
        large := ls;
        if scaled.(l) < 1.0 then small := l :: !small else large := l :: !large;
        pair ()
      | _, _ -> ()
    in
    pair ();
    Array.init draws (fun _ ->
        let u = Rng.float rng (float_of_int population) in
        let i = min (int_of_float u) (population - 1) in
        if u -. float_of_int i < prob.(i) then i else alias.(i))
  in
  let users = sample_users () in
  let distinct = Hashtbl.create 65536 in
  Array.iter (fun u -> Hashtbl.replace distinct u ()) users;
  let working_set = Hashtbl.length distinct in
  let ctxs = Array.map ctx_for users in
  let warm_stack () =
    let net, services = fresh () in
    let add id = Net.add_node net id; id in
    ignore
      (Pdp_service.create services ~node:(add "pdp") ~name:"pdp"
         ~root:
           (Policy.Inline_policy
              (Policy.make ~id:"e22" ~rule_combining:Combine.First_applicable
                 [ Rule.permit ~target:Target.(any |> subject_is "role" "doctor") "permit-doctor";
                   Rule.deny "default-deny" ]))
         ());
    let cache = Decision_cache.create ~max_entries:(1 lsl 18) ~ttl:3600.0 () in
    let pep =
      Pep.create services ~node:(add "pep") ~domain:"d" ~resource:"r" ~content:"c"
        (Pep.Pull { pdps = [ "pdp" ]; cache = Some cache; call_timeout = 5.0 })
    in
    (* Warm: every draw descends once; single-flight coalesces the
       duplicates, Net.run settles the misses, and from then on every
       lookup is a synchronous L1 hit. *)
    Array.iter (fun ctx -> Pep.decide pep ctx (fun _ -> ())) ctxs;
    Net.run net;
    (pep, cache)
  in
  let measure scheme =
    with_scheme scheme (fun () ->
        let pep, cache = warm_stack () in
        let answered = ref 0 in
        let t0 = Sys.time () in
        Array.iter (fun ctx -> Pep.decide pep ctx (fun _ -> incr answered)) ctxs;
        let dt = Sys.time () -. t0 in
        if !answered <> draws then
          failures := Printf.sprintf "%d of %d warm decides answered synchronously" !answered draws :: !failures;
        (float_of_int draws /. dt, Decision_cache.key_bytes cache, Decision_cache.size cache))
  in
  let sha_thr, sha_bytes, sha_entries = measure Decision_cache.Sha_hex in
  let packed_thr, packed_bytes, packed_entries = measure Decision_cache.Packed in
  let decide_speedup = packed_thr /. sha_thr in
  let st = Intern.stats Intern.global in
  Printf.printf "\nwarm-L1 decide, %d draws over %d-user Zipf(%.1f) (%d distinct):\n" draws
    population skew working_set;
  Printf.printf "  %-14s %14s %14s %12s\n" "scheme" "decides/s" "resident keys" "key bytes";
  Printf.printf "  %-14s %14.0f %14d %12d\n" "sha-hex" sha_thr sha_entries sha_bytes;
  Printf.printf "  %-14s %14.0f %14d %12d\n" "packed" packed_thr packed_entries packed_bytes;
  Printf.printf "  intern table: %d strings, %d pairs, %d values, %d atoms\n" st.Intern.strings
    st.Intern.pairs st.Intern.values st.Intern.atoms;
  (* -- part 3: engine-level 1M-user runs, both schemes --------------- *)
  let scenario =
    {
      W.default with
      W.seed = 7;
      users = 1_000_000;
      shards = 2;
      cache_ttl = 30.0;
      cache_capacity = 65_536;
      arrivals = W.Open_loop { rate = 400.0 };
      duration = 2.0;
    }
  in
  let packed_run = with_scheme Decision_cache.Packed (fun () -> W.run scenario) in
  let packed_rerun = with_scheme Decision_cache.Packed (fun () -> W.run scenario) in
  let sha_run = with_scheme Decision_cache.Sha_hex (fun () -> W.run scenario) in
  let mpr (r : W.report) = float_of_int r.W.messages /. float_of_int r.W.offered in
  Printf.printf "\n1M-user engine run (seed 7, 400 req/s, 2 shards, cached):\n";
  Printf.printf "  %-14s %8s %8s %8s %8s %9s %12s\n" "scheme" "offered" "granted" "denied"
    "errors" "msgs/req" "active users";
  List.iter
    (fun (label, (r : W.report)) ->
      Printf.printf "  %-14s %8d %8d %8d %8d %9.2f %12d\n" label r.W.offered r.W.granted
        r.W.denied r.W.errors (mpr r) r.W.active_users)
    [ ("sha-hex", sha_run); ("packed", packed_run) ];
  print_newline ();
  check "key-build-speedup" (key_speedup >= 2.0)
    (Printf.sprintf "packed %.3f us vs sha %.3f us, %.1fx >= 2x" packed_us sha_us key_speedup);
  check "warm-decide-speedup" (decide_speedup >= 2.0)
    (Printf.sprintf "%.0f vs %.0f decides/s, %.1fx >= 2x" packed_thr sha_thr decide_speedup);
  check "resident-key-bytes"
    (packed_entries = sha_entries && packed_bytes * 2 <= sha_bytes)
    (Printf.sprintf "%d bytes packed vs %d sha over %d entries (<= half)" packed_bytes sha_bytes
       sha_entries);
  check "decisions-unchanged"
    (packed_run.W.granted = sha_run.W.granted
    && packed_run.W.denied = sha_run.W.denied
    && packed_run.W.errors = sha_run.W.errors
    && packed_run.W.shed = sha_run.W.shed)
    (Printf.sprintf "granted/denied/errors/shed %d/%d/%d/%d under both key schemes"
       packed_run.W.granted packed_run.W.denied packed_run.W.errors packed_run.W.shed);
  check "msgs-per-req-unchanged"
    (packed_run.W.messages = sha_run.W.messages)
    (Printf.sprintf "%.2f msgs/req packed vs %.2f sha" (mpr packed_run) (mpr sha_run));
  check "o-active-state"
    (packed_run.W.active_users < 100_000 && packed_run.W.active_users <= packed_run.W.offered)
    (Printf.sprintf "%d of %d users materialised" packed_run.W.active_users scenario.W.users);
  check "determinism"
    (W.render packed_run = W.render packed_rerun)
    "same-seed 1M-user report renders byte-identical";
  check "conservation"
    (W.conservation_ok packed_run && W.conservation_ok sha_run)
    "completed = offered and answers sum up under both schemes";
  List.iter (fun f -> Printf.printf "E22 FAILURE: %s\n" f) !failures;
  record_gate_failures "e22" !failures;
  write_bench_json "e22"
    [
      ("key_build_speedup", json_f key_speedup);
      ("warm_decide_speedup", json_f decide_speedup);
      ("packed_decides_per_s", json_f packed_thr);
      ("sha_decides_per_s", json_f sha_thr);
      ("packed_key_bytes", json_i packed_bytes);
      ("sha_key_bytes", json_i sha_bytes);
      ("working_set", json_i working_set);
      ("active_users_1m", json_i packed_run.W.active_users);
      ("msgs_per_req_1m", json_f (mpr packed_run));
      ("gate_failures", json_i (List.length !failures));
    ]

(* ==================================================================== *)
(* E23 — policy churn: targeted region invalidation vs full flush       *)
(* ==================================================================== *)

(* Two deterministic measurements of the change-impact engine:

   - a sequential churn corpus: G policy generations over a fixed
     request population, decided through an L1 decision cache under
     three arms — targeted region invalidation (Delta.between), full
     flush, and an uncached Policy.evaluate reference.  No request is
     ever in flight across a publish, so the three decision streams
     must be byte-identical under both key schemes; under the packed
     scheme the targeted arm must also retain strictly more warm
     entries (Sha_hex keys are undecodable, so targeted degrades to
     the flush there — soundness preserved, savings forfeited);
   - the workload ablation: the same churn schedule through the engine
     with [churn_targeted] on and off — retained cache hits and
     messages per request, gated against the previous ledger entry
     with the e20 tolerance band. *)

let e23_churn () =
  header "E23  Policy churn: targeted region invalidation vs full flush"
    "a publish's change-impact region purges only the affected cached \
     decisions: decision streams stay byte-identical to a full flush and an \
     uncached reference, while the targeted arm retains strictly more warm \
     entries and spends fewer messages per request under churn";
  let module W = Dacs_workload.Workload in
  let module D = Dacs_policy.Delta in
  let failures = ref [] in
  let check name ok detail =
    Printf.printf "E23 CHECK %s: %s (%s)\n" name (if ok then "PASS" else "FAIL") detail;
    if not ok then failures := Printf.sprintf "%s (%s)" name detail :: !failures
  in
  let with_scheme scheme f =
    let saved = Decision_cache.key_scheme () in
    Decision_cache.set_key_scheme scheme;
    Fun.protect ~finally:(fun () -> Decision_cache.set_key_scheme saved) f
  in
  (* -- part 1: sequential churn corpus ------------------------------- *)
  let resources = 8 and generations = 12 in
  let root gen = Policy.Inline_policy (W.churned_policy ~resources ~gen) in
  let ctxs =
    List.concat_map
      (fun role ->
        List.concat_map
          (fun r ->
            List.map
              (fun act ->
                Context.make
                  ~subject:
                    [ ("subject-id", Value.String ("u-" ^ role)); ("role", Value.String role) ]
                  ~resource:[ ("resource-id", Value.String (Printf.sprintf "res%d" r)) ]
                  ~action:[ ("action-id", Value.String act) ]
                  ())
              [ "read"; "write" ])
          (List.init resources Fun.id))
      [ "doctor"; "nurse"; "admin" ]
  in
  let decide_cached cache child ctx =
    let key = Decision_cache.request_key ctx in
    match Decision_cache.get cache ~now:0.0 ~key with
    | Some r -> r
    | None ->
      let r = Policy.evaluate_child ctx child in
      Decision_cache.put cache ~now:0.0 ~key r;
      r
  in
  let max_zones = ref 0 and region_unbounded = ref false in
  (* Runs the whole corpus under the current key scheme; returns the
     three decision streams plus cache stats. *)
  let corpus () =
    let targeted = Decision_cache.create ~max_entries:4096 ~ttl:3600.0 () in
    let full = Decision_cache.create ~max_entries:4096 ~ttl:3600.0 () in
    let bufs = (Buffer.create 1024, Buffer.create 1024, Buffer.create 1024) in
    let t_dropped = ref 0 and f_dropped = ref 0 in
    for gen = 0 to generations do
      if gen > 0 then begin
        let region = D.between (Some (root (gen - 1))) (Some (root gen)) in
        max_zones := max !max_zones (D.zone_count region);
        if D.is_unbounded region then region_unbounded := true;
        t_dropped := !t_dropped + Decision_cache.invalidate_region targeted region;
        f_dropped := !f_dropped + Decision_cache.size full;
        Decision_cache.invalidate_all full
      end;
      List.iter
        (fun ctx ->
          let bt, bf, br = bufs in
          let record buf (r : Decision.result) =
            Buffer.add_string buf (Decision.decision_to_string r.Decision.decision);
            Buffer.add_char buf ';'
          in
          record bt (decide_cached targeted (root gen) ctx);
          record bf (decide_cached full (root gen) ctx);
          record br (Policy.evaluate_child ctx (root gen)))
        ctxs
    done;
    let bt, bf, br = bufs in
    ( Buffer.contents bt,
      Buffer.contents bf,
      Buffer.contents br,
      (Decision_cache.stats targeted).Decision_cache.hits,
      (Decision_cache.stats full).Decision_cache.hits,
      !t_dropped,
      !f_dropped )
  in
  let p_t, p_f, p_r, p_thits, p_fhits, p_tdrop, p_fdrop =
    with_scheme Decision_cache.Packed corpus
  in
  let s_t, s_f, s_r, s_thits, s_fhits, _, _ = with_scheme Decision_cache.Sha_hex corpus in
  Printf.printf "sequential corpus (%d resources, %d publishes, %d requests/generation):\n"
    resources generations (List.length ctxs);
  Printf.printf "  %-10s %14s %14s %14s %14s\n" "scheme" "targeted hits" "flush hits"
    "targeted drops" "flush drops";
  Printf.printf "  %-10s %14d %14d %14d %14d\n" "packed" p_thits p_fhits p_tdrop p_fdrop;
  Printf.printf "  %-10s %14d %14d %14s %14s\n" "sha-hex" s_thits s_fhits "(degrades)" "";
  print_newline ();
  check "corpus-decisions-identical"
    (p_t = p_f && p_f = p_r)
    "targeted = full-flush = uncached reference, byte-identical streams (packed)";
  check "corpus-decisions-identical-sha"
    (s_t = s_f && s_f = s_r)
    "the same three streams under the legacy Sha_hex key scheme";
  check "corpus-hit-retention" (p_thits > p_fhits)
    (Printf.sprintf "%d targeted hits > %d flush hits (packed)" p_thits p_fhits);
  check "corpus-targeted-drops-fewer" (p_tdrop < p_fdrop)
    (Printf.sprintf "%d targeted drops < %d flush drops" p_tdrop p_fdrop);
  check "sha-degrades-soundly" (s_thits >= s_fhits)
    (Printf.sprintf "%d vs %d hits: undecodable keys drop conservatively" s_thits s_fhits);
  check "regions-bounded"
    ((not !region_unbounded) && !max_zones <= 4)
    (Printf.sprintf "every consecutive-generation region bounded, max %d zones" !max_zones);
  (* -- part 2: workload ablation -------------------------------------- *)
  let scenario targeted =
    {
      W.default with
      W.seed = 11;
      cache_ttl = 30.0;
      duration = 4.0;
      churn = Some { W.churn_period = 0.5; churn_targeted = targeted };
    }
  in
  let targeted_run = W.run (scenario true) in
  let targeted_rerun = W.run (scenario true) in
  let full_run = W.run (scenario false) in
  let mpr (r : W.report) = float_of_int r.W.messages /. float_of_int r.W.offered in
  Printf.printf "\nworkload ablation (seed 11, publish every 0.5s of a 4s cached run):\n";
  Printf.printf "  %-14s %10s %10s %9s %9s %8s\n" "arm" "cache hits" "publishes" "granted"
    "denied" "msgs/req";
  List.iter
    (fun (label, (r : W.report)) ->
      Printf.printf "  %-14s %10d %10d %9d %9d %8.2f\n" label r.W.cache_hits r.W.publishes
        r.W.granted r.W.denied (mpr r))
    [ ("full-flush", full_run); ("targeted", targeted_run) ];
  print_newline ();
  check "workload-conservation"
    (W.conservation_ok targeted_run && W.conservation_ok full_run)
    "completed = offered and answers sum up under both arms";
  check "workload-publishes"
    (targeted_run.W.publishes = full_run.W.publishes && targeted_run.W.publishes > 0)
    (Printf.sprintf "%d generations installed in both arms" targeted_run.W.publishes);
  check "workload-hit-retention"
    (targeted_run.W.cache_hits > full_run.W.cache_hits)
    (Printf.sprintf "%d targeted hits > %d full-flush hits" targeted_run.W.cache_hits
       full_run.W.cache_hits);
  check "workload-msgs-per-req"
    (mpr targeted_run < mpr full_run)
    (Printf.sprintf "%.2f targeted < %.2f full-flush" (mpr targeted_run) (mpr full_run));
  check "workload-determinism"
    (W.render targeted_run = W.render targeted_rerun)
    "same-seed churn report renders byte-identical";
  (* regression gates against the previous ledger entry's embedded e23
     snapshot (absent on the first run: nothing to compare) *)
  let hit_ratio =
    float_of_int targeted_run.W.cache_hits /. float_of_int (max 1 full_run.W.cache_hits)
  in
  let ledger = Filename.concat (history_dir ()) "ledger.jsonl" in
  (match Option.bind (read_file_opt ledger) last_line with
  | None -> Printf.printf "E23 CHECK regression: PASS (no ledger, nothing to compare)\n"
  | Some prev -> (
    match
      (find_float_field prev "churn_hit_ratio", find_float_field prev "churn_msgs_per_req")
    with
    | Some prev_ratio, Some prev_mpr ->
      check "hit-ratio-regression"
        (hit_ratio >= (prev_ratio /. e20_tolerance) -. 1e-9)
        (Printf.sprintf "%.2fx vs %.2fx last entry, tolerance %d%%" hit_ratio prev_ratio
           (int_of_float ((e20_tolerance -. 1.0) *. 100.0)));
      check "churn-msgs-per-req-regression"
        (mpr targeted_run <= (prev_mpr *. e20_tolerance) +. 1e-9)
        (Printf.sprintf "%.2f vs %.2f last entry, tolerance %d%%" (mpr targeted_run) prev_mpr
           (int_of_float ((e20_tolerance -. 1.0) *. 100.0)))
    | _ ->
      Printf.printf
        "E23 CHECK regression: PASS (previous entry has no e23 snapshot, nothing to compare)\n"));
  List.iter (fun f -> Printf.printf "E23 FAILURE: %s\n" f) !failures;
  record_gate_failures "e23" !failures;
  write_bench_json "e23"
    [
      ("seq_targeted_hits", json_i p_thits);
      ("seq_full_hits", json_i p_fhits);
      ("seq_targeted_drops", json_i p_tdrop);
      ("seq_full_drops", json_i p_fdrop);
      ("max_region_zones", json_i !max_zones);
      ("targeted_cache_hits", json_i targeted_run.W.cache_hits);
      ("full_cache_hits", json_i full_run.W.cache_hits);
      ("churn_hit_ratio", json_f hit_ratio);
      ("churn_msgs_per_req", json_f (mpr targeted_run));
      ("full_msgs_per_req", json_f (mpr full_run));
      ("publishes", json_i targeted_run.W.publishes);
      ("gate_failures", json_i (List.length !failures));
    ]

(* ==================================================================== *)
(* Micro-benchmarks (Bechamel)                                          *)
(* ==================================================================== *)

let micro () =
  header "MICRO  CPU micro-benchmarks (Bechamel, monotonic clock)"
    "absolute costs of the primitives: hashing, signatures, XML, evaluation";
  let open Bechamel in
  let kilobyte = String.make 1024 'x' in
  let keys = Rsa.generate (Rng.create 5L) ~bits:512 in
  let signature = Rsa.sign keys.Rsa.private_ "msg" in
  let policy100 = sized_policy 100 in
  let policy_xml = Dacs_policy.Xacml_xml.child_to_string (Policy.Inline_policy policy100) in
  let ctx = request_for 99 in
  let pa =
    Policy.make ~id:"pa" ~issuer:"a"
      (List.init 20 (fun i ->
           Rule.permit ~target:(Target.for_resource (string_of_int (i mod 5))) (Printf.sprintf "p%d" i)))
  in
  let pb =
    Policy.make ~id:"pb" ~issuer:"b"
      (List.init 20 (fun i ->
           Rule.deny ~target:(Target.for_resource (string_of_int (i mod 5))) (Printf.sprintf "d%d" i)))
  in
  let tests =
    [
      Test.make ~name:"sha256 (1 KiB)" (Staged.stage (fun () -> Dacs_crypto.Sha256.digest kilobyte));
      Test.make ~name:"hmac-sha256 (1 KiB)"
        (Staged.stage (fun () -> Dacs_crypto.Hmac.sha256 ~key:"k" kilobyte));
      Test.make ~name:"rsa-512 sign" (Staged.stage (fun () -> Rsa.sign keys.Rsa.private_ "msg"));
      Test.make ~name:"rsa-512 verify"
        (Staged.stage (fun () -> Rsa.verify keys.Rsa.public "msg" ~signature));
      Test.make ~name:"xml parse (100-rule policy)" (Staged.stage (fun () -> Xml.of_string policy_xml));
      Test.make ~name:"policy eval (100 rules)" (Staged.stage (fun () -> Policy.evaluate ctx policy100));
      Test.make ~name:"conflict scan (20x20 rules)" (Staged.stage (fun () -> Conflict.find_between pa pb));
    ]
  in
  let test = Test.make_grouped ~name:"dacs" tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances test in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let results = Analyze.merge ols instances results in
  Printf.printf "%-36s %16s\n" "benchmark" "ns/run";
  match Hashtbl.find_opt results (Measure.label Toolkit.Instance.monotonic_clock) with
  | None -> print_endline "no results"
  | Some by_name ->
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) by_name []
    |> List.sort compare
    |> List.iter (fun (name, ols) ->
           match Analyze.OLS.estimates ols with
           | Some (est :: _) -> Printf.printf "%-36s %16.1f\n" name est
           | _ -> Printf.printf "%-36s %16s\n" name "n/a")

(* ==================================================================== *)

let experiments =
  [
    ("e1", e1_vo_baseline);
    ("e2", e2_push_vs_pull);
    ("e3", e3_xacml_eval);
    ("e4", e4_caching);
    ("e5", e5_syndication);
    ("e6", e6_message_size);
    ("e7", e7_conflicts);
    ("e8", e8_dependability);
    ("e9", e9_negotiation);
    ("e10", e10_delegation);
    ("e11", e11_rbac_scale);
    ("e12", e12_discovery_ablation);
    ("e13", e13_index_ablation);
    ("e14", e14_resilience);
    ("e15", e15_telemetry);
    ("e16", e16_sharded_tier);
    ("e17", e17_cache_hierarchy);
    ("e18", e18_workload);
    ("e19", e19_compiled_eval);
    ("e21", e21_offline);
    ("e22", e22_scale);
    ("e23", e23_churn);
    ("e20", e20_trajectory);
    ("micro", micro);
  ]

let () =
  let requested = List.tl (Array.to_list Sys.argv) in
  let to_run =
    if requested = [] then experiments
    else
      List.filter_map
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> Some (name, f)
          | None ->
            Printf.eprintf "unknown experiment %S (available: %s)\n" name
              (String.concat ", " (List.map fst experiments));
            None)
        requested
  in
  List.iter (fun (_, f) -> f ()) to_run;
  if !gate_failures <> [] then begin
    Printf.printf "\n%d gated check(s) failed:\n" (List.length !gate_failures);
    List.iter (fun f -> Printf.printf "  %s\n" f) !gate_failures;
    exit 1
  end
