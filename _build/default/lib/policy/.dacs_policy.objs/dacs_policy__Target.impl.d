lib/policy/target.ml: Context Expr Format Option Printf Value
