(* Dependability demo: a PEP backed by three PDP replicas keeps answering
   while replicas crash and recover around it.

   Run with:  dune exec examples/failover_demo.exe *)

module Value = Dacs_policy.Value
module Policy = Dacs_policy.Policy
module Rule = Dacs_policy.Rule
module Target = Dacs_policy.Target
module Combine = Dacs_policy.Combine
module Net = Dacs_net.Net
module Engine = Dacs_net.Engine
module Service = Dacs_ws.Service
open Dacs_core

let () =
  let net = Net.create () in
  let services = Service.create (Dacs_net.Rpc.create net) in

  let policy =
    Policy.Inline_policy
      (Policy.make ~id:"p" ~rule_combining:Combine.First_applicable
         [
           Rule.permit ~target:Target.(any |> subject_is "role" "operator") "ops";
           Rule.deny "default-deny";
         ])
  in
  let replicas =
    List.map
      (fun i ->
        let node = Printf.sprintf "pdp-%d" i in
        Net.add_node net node;
        ignore (Pdp_service.create services ~node ~name:node ~root:policy ());
        node)
      [ 1; 2; 3 ]
  in
  Net.add_node net "pep";
  let pep =
    Pep.create services ~node:"pep" ~domain:"ops" ~resource:"control-panel"
      (Pep.Pull { pdps = replicas; cache = None; call_timeout = 0.4 })
  in
  Net.add_node net "console";
  let client =
    Client.create services ~node:"console"
      ~subject:[ ("subject-id", Value.String "op1"); ("role", Value.String "operator") ]
  in

  let granted = ref 0 and denied = ref 0 and errors = ref 0 in
  let request () =
    Client.request client ~pep:"pep" ~action:"read" ~timeout:5.0 (function
      | Ok (Wire.Granted _) -> incr granted
      | Ok (Wire.Denied _) -> incr denied
      | Error _ -> incr errors)
  in

  (* One request every second for 60 s of simulated time. *)
  for i = 0 to 59 do
    Engine.schedule (Net.engine net) ~delay:(float_of_int i) request
  done;

  (* A crash/recovery schedule that at one point takes out two of the
     three replicas at once. *)
  let crash at node = Engine.schedule (Net.engine net) ~delay:at (fun () ->
      Printf.printf "t=%5.1f  CRASH   %s\n" at node;
      Net.crash net node)
  in
  let recover at node = Engine.schedule (Net.engine net) ~delay:at (fun () ->
      Printf.printf "t=%5.1f  RECOVER %s\n" at node;
      Net.recover net node)
  in
  crash 10.0 "pdp-1";
  crash 20.0 "pdp-2";
  recover 35.0 "pdp-1";
  crash 40.0 "pdp-3";
  recover 50.0 "pdp-2";
  recover 55.0 "pdp-3";

  Net.run net;

  let s = Pep.stats pep in
  Printf.printf
    "\n60 requests over 60 s with crashes:\n\
    \  granted   : %d\n\
    \  denied    : %d\n\
    \  errors    : %d\n\
    \  pdp calls : %d (failovers: %d)\n"
    !granted !denied !errors s.Pep.pdp_calls s.Pep.failovers;
  if !granted = 60 then
    print_endline "\nevery request was served despite two simultaneous replica failures"
  else
    Printf.printf "\n%d requests were not served — try more replicas!\n" (60 - !granted)
