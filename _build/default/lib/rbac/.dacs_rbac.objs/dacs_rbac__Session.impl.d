lib/rbac/session.ml: List Printf Rbac Set String
