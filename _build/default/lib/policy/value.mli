(** Typed attribute values — the data model of the policy language.

    Mirrors the XACML primitive data types that matter in practice:
    strings, integers, booleans, doubles, times and URIs.  Attribute
    {e bags} (unordered multisets) are plain lists. *)

type t =
  | String of string
  | Int of int
  | Bool of bool
  | Double of float
  | Time of float  (** seconds since the simulation epoch *)
  | Uri of string

type bag = t list

(** {1 Types} *)

type data_type = String_t | Int_t | Bool_t | Double_t | Time_t | Uri_t

val type_of : t -> data_type
val type_name : data_type -> string
(** ["string"], ["integer"], ["boolean"], ["double"], ["time"], ["anyURI"] —
    the local names used in the XML encoding. *)

val data_type_of_name : string -> data_type option

(** {1 Comparison} *)

val equal : t -> t -> bool
(** Same type and same content. *)

val compare_same_type : t -> t -> (int, string) result
(** Ordering within one type; [Error] explains a type mismatch or an
    unordered type (booleans are not ordered). *)

(** {1 Rendering and parsing} *)

val to_string : t -> string
(** Lexical form, e.g. ["42"], ["true"], ["urn:x"]. *)

val of_string : data_type -> string -> (t, string) result
(** Parse the lexical form of the given type. *)

val pp : Format.formatter -> t -> unit
(** Type-annotated, e.g. [integer:42]. *)

val describe : t -> string

(** {1 Bags} *)

val bag_contains : bag -> t -> bool
val bag_equal : bag -> bag -> bool
(** Multiset equality. *)

val bag_intersection : bag -> bag -> bag
val bag_union : bag -> bag -> bag
(** Set-style union (duplicates collapsed), as in XACML. *)

val bag_subset : bag -> bag -> bool
val pp_bag : Format.formatter -> bag -> unit
