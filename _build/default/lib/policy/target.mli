(** Policy targets: the applicability test of rules, policies and
    policy sets.

    A target has four sections (subjects, resources, actions,
    environments).  Each section is a disjunction of clauses; each clause
    is a conjunction of matches; an empty section matches anything — the
    XACML 2.0 structure. *)

type match_ = {
  fn : string;  (** a binary boolean function from the expression registry *)
  value : Value.t;  (** the literal, passed as the function's first argument *)
  category : Context.category;
  attribute_id : string;
}

type clause = match_ list
(** Conjunction. *)

type section = clause list
(** Disjunction; [[]] matches everything. *)

type t = {
  subjects : section;
  resources : section;
  actions : section;
  environments : section;
}

val any : t
(** Matches every request. *)

val make :
  ?subjects:section -> ?resources:section -> ?actions:section -> ?environments:section -> unit -> t

(** {1 Simple builders} *)

val match_string : Context.category -> string -> string -> match_
(** [match_string cat attr v] — string-equal on one attribute. *)

val subject_is : string -> string -> t -> t
(** [subject_is attr v t] adds a one-clause subject requirement. *)

val resource_is : string -> string -> t -> t
val action_is : string -> string -> t -> t

val for_action : string -> t
(** Target matching requests whose ["action-id"] equals the given name. *)

val for_resource : string -> t
val for_subject_role : string -> t

type outcome = Match | No_match | Indeterminate_match of string

val evaluate : ?resolve:Expr.resolver -> Context.t -> t -> outcome
(** XACML semantics: a match function error makes the section
    indeterminate rather than a mismatch. *)

val pp : Format.formatter -> t -> unit
