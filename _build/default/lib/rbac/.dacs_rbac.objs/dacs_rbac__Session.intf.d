lib/rbac/session.mli: Rbac
